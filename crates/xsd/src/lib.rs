//! # xsd — a from-scratch core XML Schema implementation
//!
//! The substrate the BonXai translations target: the paper's formal XSD
//! model and its practical XML syntax.
//!
//! * [`model::Xsd`] — Definition 2: types, ρ, T0 with the **EDC** and
//!   **UPA** constraints (EDC holds by construction in the factored
//!   representation; UPA is checked on assembly);
//! * [`dfa_xsd::DfaXsd`] — Definition 3: DFA-based XSDs, the intermediate
//!   representation of all four translation algorithms;
//! * [`validate`] — top-down unique typing of documents;
//! * [`minimize`] — type minimization (adaptation of Martens & Niehren);
//! * [`ksuffix`] — Definition 10: is a schema k-suffix?
//! * [`syntax`] — reading and writing actual `<xs:schema>` XML;
//! * [`simple_types`] / [`content`] — datatypes and content models shared
//!   with the BonXai side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod content;
pub mod dfa_xsd;
pub mod ksuffix;
pub mod minimize;
pub mod model;
pub mod simple_types;
pub mod syntax;
pub mod validate;
pub mod violation;

pub use compare::{check_schemas_equivalent, erase_datatypes, Divergence, DivergenceReason};
pub use content::{AttributeUse, ContentModel};
pub use dfa_xsd::{DfaXsd, DfaXsdBuilder, DfaXsdError};
pub use ksuffix::{is_k_suffix, minimal_k, KSuffixOutcome};
pub use minimize::minimize_types;
pub use model::{TypeDef, TypeId, Xsd, XsdBuilder, XsdError};
pub use simple_types::{admits, canonical_value, value_space_witness, Facets, SimpleType};
pub use syntax::{emit_xsd, parse_xsd, parse_xsd_doc, parse_xsd_unchecked};
pub use validate::{is_valid, validate, CompiledXsd, TypingResult};
pub use violation::{Violation, ViolationKind};
