//! DFA-based XSDs — Definition 3 of the paper.
//!
//! > A DFA-based XSD is a tuple (A, S, λ), where A = (Q, EName, δ, q0) is a
//! > DFA with initial state q0 and without final states such that q0 has no
//! > incoming transitions, S ⊆ EName is the set of allowed root element
//! > names and λ maps each state in Q \ {q0} to a deterministic regular
//! > expression over EName. Furthermore, for every state q and every
//! > element name a occurring in λ(q), δ(q, a) is non-empty.
//!
//! This is the intermediate representation of all four translation
//! algorithms. A document satisfies (A, S, λ) if its root's name is in S
//! and, for every node u, `A(anc-str(u)) = q` implies that `ch-str(u)`
//! matches λ(q).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use relang::{Alphabet, CompiledDre, Dfa, Sym};
use xmltree::{Document, NodeId};

use crate::content::ContentModel;
use crate::violation::{check_attributes, check_text, Violation, ViolationKind};

/// A DFA-based XSD (with deterministic content models).
#[derive(Clone, Debug)]
pub struct DfaXsd {
    /// The element-name alphabet.
    pub ename: Alphabet,
    /// The type automaton A (finals unused; possibly partial).
    pub dfa: Dfa,
    /// The allowed root element names S.
    pub roots: BTreeSet<Sym>,
    /// λ: content model per state; `None` exactly for the initial state.
    pub lambda: Vec<Option<ContentModel>>,
}

/// Errors detected when assembling a DFA-based XSD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfaXsdError {
    /// The initial state has an incoming transition.
    InitialHasIncoming,
    /// λ is missing for a non-initial state.
    MissingLambda(usize),
    /// λ(q) mentions a name `a` with δ(q, a) undefined.
    MissingTransition {
        /// The state q.
        state: usize,
        /// The name mentioned in λ(q).
        element: String,
    },
    /// A content model violates UPA.
    NotDeterministic(usize),
    /// A root name has no transition from the initial state.
    RootNotWired(String),
    /// λ given for the initial state.
    LambdaOnInitial,
}

impl fmt::Display for DfaXsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfaXsdError::InitialHasIncoming => {
                write!(f, "the initial state must have no incoming transitions")
            }
            DfaXsdError::MissingLambda(q) => write!(f, "state {q} has no content model"),
            DfaXsdError::MissingTransition { state, element } => write!(
                f,
                "λ({state}) mentions {element} but δ({state}, {element}) is undefined"
            ),
            DfaXsdError::NotDeterministic(q) => {
                write!(f, "content model of state {q} violates UPA")
            }
            DfaXsdError::RootNotWired(a) => {
                write!(
                    f,
                    "root element {a} has no transition from the initial state"
                )
            }
            DfaXsdError::LambdaOnInitial => {
                write!(f, "the initial state must not have a content model")
            }
        }
    }
}

impl std::error::Error for DfaXsdError {}

impl DfaXsd {
    /// Assembles and checks a DFA-based XSD.
    pub fn new(
        ename: Alphabet,
        dfa: Dfa,
        roots: BTreeSet<Sym>,
        lambda: Vec<Option<ContentModel>>,
    ) -> Result<DfaXsd, DfaXsdError> {
        let x = DfaXsd {
            ename,
            dfa,
            roots,
            lambda,
        };
        x.check()?;
        Ok(x)
    }

    fn check(&self) -> Result<(), DfaXsdError> {
        let q0 = self.dfa.initial();
        for q in 0..self.dfa.n_states() {
            for a in 0..self.dfa.n_syms() {
                if self.dfa.transition(q, Sym(a as u32)) == Some(q0) {
                    return Err(DfaXsdError::InitialHasIncoming);
                }
            }
        }
        if self.lambda.get(q0).is_some_and(Option::is_some) {
            return Err(DfaXsdError::LambdaOnInitial);
        }
        for q in 0..self.dfa.n_states() {
            if q == q0 {
                continue;
            }
            let model = self
                .lambda
                .get(q)
                .and_then(Option::as_ref)
                .ok_or(DfaXsdError::MissingLambda(q))?;
            model
                .check_deterministic()
                .map_err(|_| DfaXsdError::NotDeterministic(q))?;
            for sym in model.regex.symbols() {
                if self.dfa.transition(q, sym).is_none() {
                    return Err(DfaXsdError::MissingTransition {
                        state: q,
                        element: self.ename.name(sym).to_owned(),
                    });
                }
            }
        }
        for &a in &self.roots {
            if self.dfa.transition(q0, a).is_none() {
                return Err(DfaXsdError::RootNotWired(self.ename.name(a).to_owned()));
            }
        }
        Ok(())
    }

    /// The content model of a non-initial state.
    pub fn model(&self, q: usize) -> &ContentModel {
        self.lambda[q]
            .as_ref()
            .expect("non-initial states carry content models")
    }

    /// The paper's size measure `|A|`: the number of states.
    pub fn n_states(&self) -> usize {
        self.dfa.n_states()
    }

    /// Total size: states + content-model symbol occurrences.
    pub fn size(&self) -> usize {
        self.dfa.n_states()
            + self
                .lambda
                .iter()
                .flatten()
                .map(ContentModel::size)
                .sum::<usize>()
    }

    /// Compiles the content models for repeated validation.
    pub fn compile(&self) -> CompiledDfaXsd<'_> {
        let matchers = self
            .lambda
            .iter()
            .map(|m| {
                m.as_ref()
                    .map(|cm| CompiledDre::compile(&cm.regex, self.ename.len()))
            })
            .collect();
        CompiledDfaXsd {
            schema: self,
            matchers,
        }
    }

    /// One-shot document validation.
    pub fn validate(&self, doc: &Document) -> Vec<Violation> {
        self.compile().validate(doc)
    }

    /// Whether `doc` satisfies the schema.
    pub fn is_valid(&self, doc: &Document) -> bool {
        self.validate(doc).is_empty()
    }

    /// The state reached on an ancestor string (names), if defined.
    pub fn state_of_path(&self, path: &[&str]) -> Option<usize> {
        let mut q = self.dfa.initial();
        for name in path {
            let sym = self.ename.lookup(name)?;
            q = self.dfa.transition(q, sym)?;
        }
        Some(q)
    }
}

/// A DFA-based XSD with compiled content models.
pub struct CompiledDfaXsd<'a> {
    schema: &'a DfaXsd,
    matchers: Vec<Option<CompiledDre>>,
}

impl<'a> CompiledDfaXsd<'a> {
    /// Validates `doc`, collecting all violations.
    pub fn validate(&self, doc: &Document) -> Vec<Violation> {
        let s = self.schema;
        let mut violations = Vec::new();
        let root = doc.root();
        let root_name = doc.name(root).expect("root is an element");
        let root_sym = s.ename.lookup(root_name);
        let allowed = root_sym.is_some_and(|sym| s.roots.contains(&sym));
        if !allowed {
            violations.push(Violation {
                node: root,
                kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
            });
            return violations;
        }
        let q0 = s.dfa.initial();
        let root_state = s
            .dfa
            .transition(q0, root_sym.expect("checked"))
            .expect("checked by constructor: roots are wired");
        let mut stack: Vec<(NodeId, usize)> = vec![(root, root_state)];
        while let Some((node, q)) = stack.pop() {
            self.check_node(doc, node, q, &mut violations, &mut stack);
        }
        violations
    }

    fn check_node(
        &self,
        doc: &Document,
        node: NodeId,
        q: usize,
        violations: &mut Vec<Violation>,
        stack: &mut Vec<(NodeId, usize)>,
    ) {
        let s = self.schema;
        let name = doc.name(node).expect("element");
        let model = s.model(q);
        check_text(doc, node, model, violations);
        check_attributes(doc, node, model, violations);

        let mut word = Vec::new();
        let mut failed_at = None;
        for (i, child) in doc.element_children(node).enumerate() {
            match s.ename.lookup(doc.name(child).expect("element")) {
                Some(sym) => word.push(sym),
                None => {
                    failed_at = Some(i);
                    break;
                }
            }
        }
        let matcher = self.matchers[q].as_ref().expect("non-initial state");
        let failed_at = failed_at.or_else(|| matcher.first_error(&word));
        if let Some(at) = failed_at {
            violations.push(Violation {
                node,
                kind: ViolationKind::ContentModel {
                    element: name.to_owned(),
                    at,
                },
            });
        }
        for (i, child) in doc.element_children(node).enumerate() {
            if let Some(at) = failed_at {
                if i >= at {
                    break;
                }
            }
            let sym = word[i];
            match s.dfa.transition(q, sym) {
                Some(t) => stack.push((child, t)),
                None => violations.push(Violation {
                    node: child,
                    kind: ViolationKind::NoGoverningDefinition(
                        doc.name(child).expect("element").to_owned(),
                    ),
                }),
            }
        }
    }
}

/// Builder for DFA-based XSDs where states are created on demand.
#[derive(Clone, Debug)]
pub struct DfaXsdBuilder {
    /// Element-name alphabet being accumulated.
    pub ename: Alphabet,
    transitions: BTreeMap<(usize, String), usize>,
    lambda: BTreeMap<usize, ContentModel>,
    roots: BTreeSet<String>,
    n_states: usize,
}

impl Default for DfaXsdBuilder {
    fn default() -> Self {
        DfaXsdBuilder {
            ename: Alphabet::new(),
            transitions: BTreeMap::new(),
            lambda: BTreeMap::new(),
            roots: BTreeSet::new(),
            n_states: 1, // state 0 = q0
        }
    }
}

impl DfaXsdBuilder {
    /// Creates a builder with only the initial state (id 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> usize {
        let id = self.n_states;
        self.n_states += 1;
        id
    }

    /// Sets δ(q, name) = target.
    pub fn transition(&mut self, q: usize, name: &str, target: usize) {
        self.ename.intern(name);
        self.transitions.insert((q, name.to_owned()), target);
    }

    /// Sets λ(q).
    pub fn lambda(&mut self, q: usize, model: ContentModel) {
        self.lambda.insert(q, model);
    }

    /// Declares a root element name.
    pub fn root(&mut self, name: &str) {
        self.ename.intern(name);
        self.roots.insert(name.to_owned());
    }

    /// Finalizes the schema (interning any regex symbols is the caller's
    /// job: content models must already use this builder's alphabet).
    pub fn build(self) -> Result<DfaXsd, DfaXsdError> {
        let mut dfa = Dfa::new(self.ename.len(), self.n_states, 0);
        for ((q, name), target) in &self.transitions {
            let sym = self.ename.lookup(name).expect("interned in transition()");
            dfa.set_transition(*q, sym, Some(*target));
        }
        let mut lambda = vec![None; self.n_states];
        for (q, m) in self.lambda {
            lambda[q] = Some(m);
        }
        let roots = self
            .roots
            .iter()
            .map(|n| self.ename.lookup(n).expect("interned in root()"))
            .collect();
        DfaXsd::new(self.ename, dfa, roots, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relang::Regex;
    use xmltree::builder::elem;

    /// The running example as a DFA-based XSD: ancestor-aware sections.
    fn example() -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_template = b.add_state();
        let q_content = b.add_state();
        let q_tsec = b.add_state();
        let q_sec = b.add_state();
        b.root("document");
        b.transition(0, "document", q_doc);
        b.transition(q_doc, "template", q_template);
        b.transition(q_doc, "content", q_content);
        b.transition(q_template, "section", q_tsec);
        b.transition(q_tsec, "section", q_tsec);
        b.transition(q_content, "section", q_sec);
        b.transition(q_sec, "section", q_sec);

        let template = b.ename.lookup("template").unwrap();
        let content = b.ename.lookup("content").unwrap();
        let section = b.ename.lookup("section").unwrap();
        b.lambda(
            q_doc,
            ContentModel::new(Regex::concat(vec![
                Regex::sym(template),
                Regex::sym(content),
            ])),
        );
        b.lambda(
            q_template,
            ContentModel::new(Regex::opt(Regex::sym(section))),
        );
        b.lambda(
            q_content,
            ContentModel::new(Regex::star(Regex::sym(section))),
        );
        b.lambda(q_tsec, ContentModel::new(Regex::opt(Regex::sym(section))));
        b.lambda(
            q_sec,
            ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
        );
        b.build().unwrap()
    }

    #[test]
    fn validates_context_sensitively() {
        let x = example();
        let good = elem("document")
            .child(elem("template").child(elem("section")))
            .child(elem("content").child(elem("section").text("hi")))
            .build();
        assert!(x.is_valid(&good), "{:?}", x.validate(&good));
        // two sections under template: fails
        let bad = elem("document")
            .child(
                elem("template")
                    .child(elem("section"))
                    .child(elem("section")),
            )
            .child(elem("content"))
            .build();
        let v = x.validate(&bad);
        assert!(v
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ContentModel { at: 1, .. })));
        // text under a template section: fails (not mixed)
        let bad2 = elem("document")
            .child(elem("template").child(elem("section").text("boom")))
            .child(elem("content"))
            .build();
        assert!(!x.is_valid(&bad2));
    }

    #[test]
    fn state_of_path() {
        let x = example();
        let q1 = x
            .state_of_path(&["document", "template", "section"])
            .unwrap();
        let q2 = x
            .state_of_path(&["document", "template", "section", "section"])
            .unwrap();
        assert_eq!(q1, q2); // template sections loop
        let q3 = x
            .state_of_path(&["document", "content", "section"])
            .unwrap();
        assert_ne!(q1, q3);
        assert_eq!(x.state_of_path(&["document", "bogus"]), None);
    }

    #[test]
    fn wrong_root_rejected() {
        let x = example();
        let doc = elem("content").build();
        let v = x.validate(&doc);
        assert!(matches!(v[0].kind, ViolationKind::RootNotAllowed(_)));
    }

    #[test]
    fn constructor_checks_fire() {
        // λ mentions a name with no transition
        let mut b = DfaXsdBuilder::new();
        let q = b.add_state();
        b.root("a");
        b.transition(0, "a", q);
        let missing = b.ename.intern("missing");
        b.lambda(q, ContentModel::new(Regex::sym(missing)));
        assert!(matches!(
            b.build(),
            Err(DfaXsdError::MissingTransition { .. })
        ));

        // root not wired
        let mut b = DfaXsdBuilder::new();
        b.root("a");
        assert!(matches!(b.build(), Err(DfaXsdError::RootNotWired(_))));

        // incoming transition to q0
        let mut b = DfaXsdBuilder::new();
        let q = b.add_state();
        b.root("a");
        b.transition(0, "a", q);
        b.transition(q, "a", 0);
        b.lambda(q, ContentModel::empty());
        assert!(matches!(b.build(), Err(DfaXsdError::InitialHasIncoming)));
    }

    #[test]
    fn size_measures() {
        let x = example();
        assert_eq!(x.n_states(), 6);
        assert!(x.size() > 6);
    }
}
