//! Content models: the right-hand sides of type definitions and BonXai
//! rules.
//!
//! The paper's *formal* content model is just a deterministic regular
//! expression over element names (Definitions 1–3). Its *practical*
//! languages additionally carry attributes and mixedness ("BonXai's current
//! implementation also models attributes, … mixed and nillable content
//! models", Section 3.1). [`ContentModel`] bundles the formal regex with
//! that carried metadata; crucially, all four translation algorithms move
//! a `ContentModel` around *without touching the regex structure*, which
//! is what preserves UPA (Section 4.1).

use relang::regex::determinism::{check_deterministic, NonDeterminism};
use relang::{Alphabet, Regex};

use crate::simple_types::{Facets, SimpleType};

/// An attribute use on a complex type / BonXai rule.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttributeUse {
    /// Attribute name (no namespace prefix).
    pub name: String,
    /// Whether the attribute must be present (`use="required"`).
    pub required: bool,
    /// The attribute's simple type.
    pub simple_type: SimpleType,
    /// Restriction facets on the type (empty = none).
    pub facets: Facets,
}

impl AttributeUse {
    /// A required attribute of type `xs:string`.
    pub fn required(name: &str) -> Self {
        AttributeUse {
            name: name.to_owned(),
            required: true,
            simple_type: SimpleType::String,
            facets: Facets::default(),
        }
    }

    /// An optional attribute of type `xs:string`.
    pub fn optional(name: &str) -> Self {
        AttributeUse {
            name: name.to_owned(),
            required: false,
            simple_type: SimpleType::String,
            facets: Facets::default(),
        }
    }

    /// Sets the simple type (builder style).
    pub fn with_type(mut self, t: SimpleType) -> Self {
        self.simple_type = t;
        self
    }

    /// Sets restriction facets (builder style).
    pub fn with_facets(mut self, facets: Facets) -> Self {
        self.facets = facets;
        self
    }

    /// Whether `value` satisfies the type and its facets.
    pub fn validates(&self, value: &str) -> bool {
        self.simple_type.validates(value) && self.facets.validates(self.simple_type, value)
    }

    /// The type with facets, rendered for diagnostics.
    pub fn type_display(&self) -> String {
        if self.facets.is_empty() {
            self.simple_type.qname().to_owned()
        } else {
            format!("{} {}", self.simple_type.qname(), self.facets.display())
        }
    }
}

/// A content model: deterministic regex over element names, plus the
/// carried attribute and mixedness metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentModel {
    /// The regular expression over element-name symbols (the formal part).
    pub regex: Regex,
    /// Whether text may interleave with the element children.
    pub mixed: bool,
    /// Declared attributes, sorted by name.
    pub attributes: Vec<AttributeUse>,
    /// If set, the element has *simple content* of this type: no element
    /// children (`regex` is ε) and its text must validate against the
    /// type. BonXai writes this as `{ type xs:string }`.
    pub simple_content: Option<SimpleType>,
    /// Restriction facets on the simple content type.
    pub simple_facets: Facets,
    /// An *open* model accepts any attributes and text in addition to what
    /// the regex allows. Used for the `(EName)*` filler states Algorithm 3
    /// assigns to ancestor strings no rule matches (such nodes are
    /// unconstrained under Definition 1).
    pub open: bool,
}

impl ContentModel {
    /// A pure element content model (not mixed, no attributes).
    pub fn new(regex: Regex) -> Self {
        ContentModel {
            regex,
            mixed: false,
            attributes: Vec::new(),
            simple_content: None,
            simple_facets: Facets::default(),
            open: false,
        }
    }

    /// The empty content model `ε` (leaf elements).
    pub fn empty() -> Self {
        Self::new(Regex::Epsilon)
    }

    /// A simple-content model: text of the given type, no children.
    pub fn simple(t: SimpleType) -> Self {
        ContentModel {
            regex: Regex::Epsilon,
            mixed: false,
            attributes: Vec::new(),
            simple_content: Some(t),
            simple_facets: Facets::default(),
            open: false,
        }
    }

    /// The fully permissive model `(EName)*` over the given alphabet:
    /// any children, any attributes, any text (Algorithm 3's filler).
    pub fn any_content(alphabet: &Alphabet) -> Self {
        let mut cm = ContentModel::new(Regex::star(Regex::sym_set(alphabet.symbols())));
        cm.mixed = true;
        cm.open = true;
        cm
    }

    /// Sets restriction facets on the simple content (builder style).
    pub fn with_simple_facets(mut self, facets: Facets) -> Self {
        self.simple_facets = facets;
        self
    }

    /// Marks the model open (builder style); see the `open` field.
    pub fn with_open(mut self, open: bool) -> Self {
        self.open = open;
        self
    }

    /// Marks the model mixed (builder style).
    pub fn with_mixed(mut self, mixed: bool) -> Self {
        self.mixed = mixed;
        self
    }

    /// Adds attributes (builder style); keeps them sorted by name.
    pub fn with_attributes<I: IntoIterator<Item = AttributeUse>>(mut self, attrs: I) -> Self {
        self.attributes.extend(attrs);
        self.attributes.sort();
        self
    }

    /// The paper's size measure of the model (symbol occurrences).
    pub fn size(&self) -> usize {
        self.regex.size()
    }

    /// Checks the UPA/determinism requirement on the regex.
    pub fn check_deterministic(&self) -> Result<(), NonDeterminism> {
        check_deterministic(&self.regex)
    }

    /// Looks up a declared attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeUse> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Renders the regex with names from `alphabet` (for diagnostics).
    pub fn display_regex(&self, alphabet: &Alphabet) -> String {
        relang::regex::display_regex(&self.regex, alphabet)
    }
}

impl From<Regex> for ContentModel {
    fn from(regex: Regex) -> Self {
        ContentModel::new(regex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relang::Sym;

    #[test]
    fn builder_sorts_attributes() {
        let cm = ContentModel::empty()
            .with_attributes([AttributeUse::optional("z"), AttributeUse::required("a")]);
        assert_eq!(cm.attributes[0].name, "a");
        assert_eq!(cm.attributes[1].name, "z");
        assert!(cm.attribute("z").is_some());
        assert!(cm.attribute("q").is_none());
    }

    #[test]
    fn determinism_delegates() {
        let a = Regex::Sym(Sym(0));
        let det = ContentModel::new(Regex::concat(vec![a.clone(), a.clone()]));
        assert!(det.check_deterministic().is_ok());
        let nondet = ContentModel::new(Regex::concat(vec![
            Regex::star(Regex::alt(vec![a.clone(), Regex::Sym(Sym(1))])),
            a,
        ]));
        assert!(nondet.check_deterministic().is_err());
    }

    #[test]
    fn size_is_symbol_occurrences() {
        let a = Regex::Sym(Sym(0));
        let cm = ContentModel::new(Regex::concat(vec![a.clone(), Regex::star(a)]))
            .with_mixed(true)
            .with_attributes([AttributeUse::required("title")]);
        assert_eq!(cm.size(), 2); // attributes/mixed don't count
    }
}
