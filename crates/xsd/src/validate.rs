//! XSD validation via typing (Definition 2's conformance).
//!
//! A document conforms to an XSD iff it has a *correct typing*: the root's
//! typed name is in T0, and each node's children string (with the types
//! induced top-down) matches the node's content model. EDC makes the
//! correct typing unique, so validation is a single deterministic
//! top-down pass.

use std::collections::BTreeMap;

use relang::CompiledDre;
use xmltree::{Document, NodeId};

use crate::model::{TypeId, Xsd};
use crate::violation::{check_attributes, check_text, Violation, ViolationKind};

/// The result of validating a document against an XSD.
#[derive(Clone, Debug)]
pub struct TypingResult {
    /// All violations (empty = the document conforms).
    pub violations: Vec<Violation>,
    /// The (unique) typing: for each element node that received a type.
    /// Nodes under a failed region may be missing.
    pub typing: BTreeMap<NodeId, TypeId>,
}

impl TypingResult {
    /// Whether the document conforms.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An XSD with content models compiled for repeated validation.
pub struct CompiledXsd<'a> {
    xsd: &'a Xsd,
    matchers: Vec<CompiledDre>,
}

impl<'a> CompiledXsd<'a> {
    /// Compiles all content models of `xsd`.
    pub fn new(xsd: &'a Xsd) -> Self {
        let matchers = xsd
            .type_ids()
            .map(|t| CompiledDre::compile(&xsd.content(t).regex, xsd.ename.len()))
            .collect();
        CompiledXsd { xsd, matchers }
    }

    /// The underlying schema.
    pub fn xsd(&self) -> &Xsd {
        self.xsd
    }

    /// Validates `doc`, producing violations and the induced typing.
    pub fn validate(&self, doc: &Document) -> TypingResult {
        let xsd = self.xsd;
        let mut violations = Vec::new();
        let mut typing = BTreeMap::new();

        let root = doc.root();
        let root_name = doc.name(root).expect("root is an element");
        let root_type = xsd
            .ename
            .lookup(root_name)
            .and_then(|sym| xsd.start_elements().get(&sym).copied());
        let Some(root_type) = root_type else {
            violations.push(Violation {
                node: root,
                kind: ViolationKind::RootNotAllowed(root_name.to_owned()),
            });
            return TypingResult { violations, typing };
        };

        let mut stack: Vec<(NodeId, TypeId)> = vec![(root, root_type)];
        while let Some((node, t)) = stack.pop() {
            typing.insert(node, t);
            let model = xsd.content(t);
            let name = doc.name(node).expect("element");

            check_text(doc, node, model, &mut violations);
            check_attributes(doc, node, model, &mut violations);

            // Child string over the schema alphabet; names outside the
            // alphabet fail immediately.
            let mut word = Vec::new();
            let mut failed_at = None;
            for (i, child) in doc.element_children(node).enumerate() {
                match xsd.ename.lookup(doc.name(child).expect("element")) {
                    Some(sym) => word.push(sym),
                    None => {
                        failed_at = Some(i);
                        break;
                    }
                }
            }
            let failed_at = failed_at.or_else(|| self.matchers[t.index()].first_error(&word));
            if let Some(at) = failed_at {
                violations.push(Violation {
                    node,
                    kind: ViolationKind::ContentModel {
                        element: name.to_owned(),
                        at,
                    },
                });
                // Children up to the failure point still get types so that
                // reporting continues below the failure where possible.
            }
            for (i, child) in doc.element_children(node).enumerate() {
                if let Some(at) = failed_at {
                    if i >= at {
                        break;
                    }
                }
                let sym = xsd
                    .ename
                    .lookup(doc.name(child).expect("element"))
                    .expect("checked above");
                if let Some(ct) = xsd.child_type(t, sym) {
                    stack.push((child, ct));
                }
            }
        }

        TypingResult { violations, typing }
    }
}

/// One-shot validation (compiles then validates).
pub fn validate(xsd: &Xsd, doc: &Document) -> TypingResult {
    CompiledXsd::new(xsd).validate(doc)
}

/// Whether `doc` conforms to `xsd`.
pub fn is_valid(xsd: &Xsd, doc: &Document) -> bool {
    validate(xsd, doc).is_valid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::builder::elem;

    use crate::content::{AttributeUse, ContentModel};
    use crate::model::{TypeDef, XsdBuilder};
    use crate::simple_types::SimpleType;
    use relang::Regex;

    /// document(template(section?), content(section* with title)) — the
    /// reduced running example; template sections have no title, content
    /// sections require one.
    fn example() -> Xsd {
        let mut b = XsdBuilder::new();
        let document = b.ename.intern("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");
        let t_doc = b.declare_type("Tdoc");
        let t_template = b.declare_type("Ttemplate");
        let t_content = b.declare_type("Tcontent");
        let t_tsec = b.declare_type("TtemplateSection");
        let t_sec = b.declare_type("Tsection");
        b.define(
            t_doc,
            TypeDef {
                content: ContentModel::new(Regex::concat(vec![
                    Regex::sym(template),
                    Regex::sym(content),
                ])),
                child_type: [(template, t_template), (content, t_content)].into(),
            },
        );
        b.define(
            t_template,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(section))),
                child_type: [(section, t_tsec)].into(),
            },
        );
        b.define(
            t_content,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(section))),
                child_type: [(section, t_sec)].into(),
            },
        );
        b.define(
            t_tsec,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(section))),
                child_type: [(section, t_tsec)].into(),
            },
        );
        b.define(
            t_sec,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(section)))
                    .with_mixed(true)
                    .with_attributes([
                        AttributeUse::required("title"),
                        AttributeUse::optional("level").with_type(SimpleType::Integer),
                    ]),
                child_type: [(section, t_sec)].into(),
            },
        );
        b.add_start(document, t_doc);
        b.build().unwrap()
    }

    fn valid_doc() -> Document {
        elem("document")
            .child(elem("template").child(elem("section")))
            .child(
                elem("content")
                    .child(
                        elem("section")
                            .attr("title", "Intro")
                            .text("hello ")
                            .child(elem("section").attr("title", "Sub").attr("level", "2")),
                    )
                    .child(elem("section").attr("title", "Outro")),
            )
            .build()
    }

    #[test]
    fn accepts_valid_document_with_unique_typing() {
        let x = example();
        let r = validate(&x, &valid_doc());
        assert!(r.is_valid(), "{:?}", r.violations);
        // context-dependent typing: the template section and the content
        // sections got different types
        let names: Vec<&str> = r.typing.values().map(|&t| x.type_name(t)).collect();
        assert!(names.contains(&"TtemplateSection"));
        assert!(names.contains(&"Tsection"));
    }

    #[test]
    fn rejects_wrong_root() {
        let x = example();
        let doc = elem("template").build();
        let r = validate(&x, &doc);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::RootNotAllowed(_)
        ));
    }

    #[test]
    fn context_sensitivity_is_enforced() {
        // a title-less section under content: missing required attribute
        let x = example();
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("section")))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::MissingAttribute(a) if a == "title")));
        // but a title-less section under template is fine
        let doc2 = elem("document")
            .child(elem("template").child(elem("section")))
            .child(elem("content"))
            .build();
        assert!(validate(&x, &doc2).is_valid());
    }

    #[test]
    fn text_only_allowed_in_mixed() {
        let x = example();
        // text in template (not mixed)
        let doc = elem("document")
            .child(elem("template").text("boom"))
            .child(elem("content"))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::UnexpectedText(n) if n == "template")));
    }

    #[test]
    fn content_model_failure_position() {
        let x = example();
        // template with two sections: fails at child index 1
        let doc = elem("document")
            .child(
                elem("template")
                    .child(elem("section"))
                    .child(elem("section")),
            )
            .child(elem("content"))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { at: 1, .. })));
    }

    #[test]
    fn simple_type_validation() {
        let x = example();
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("content").child(elem("section").attr("title", "t").attr("level", "two")))
            .build();
        let r = validate(&x, &doc);
        assert!(r.violations.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::InvalidAttributeValue { attribute, .. } if attribute == "level"
        )));
    }

    #[test]
    fn unknown_element_fails_content_model() {
        let x = example();
        let doc = elem("document")
            .child(elem("template"))
            .child(elem("mystery"))
            .build();
        let r = validate(&x, &doc);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { at: 1, .. })));
    }
}
