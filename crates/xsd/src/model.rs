//! The formal core XSD model — Definition 2 of the paper.
//!
//! > An XSchema Definition (XSD) is a tuple X = (EName, Types, ρ, T0) where
//! > EName and Types are finite sets of elements and types, ρ is a mapping
//! > from Types to regular expressions over alphabet TEName, and T0 ⊆
//! > TEName is a set of typed start elements, subject to **EDC** (no two
//! > typed elements `a[t1]`, `a[t2]` with t1 ≠ t2 in one expression or in T0)
//! > and **UPA** (each ρ(t) is deterministic).
//!
//! Thanks to EDC, a regular expression over *typed* element names `a[t]`
//! factors into a plain expression over element names plus a per-type map
//! `EName → Types` assigning each occurring name its unique type. That is
//! exactly how [`TypeDef`] stores ρ(t): the factored representation makes
//! EDC hold *by construction* and keeps the translation algorithms honest
//! (they relabel symbols; they never restructure expressions).

use std::collections::BTreeMap;
use std::fmt;

use relang::regex::determinism::NonDeterminism;
use relang::{Alphabet, Sym};

use crate::content::ContentModel;

/// Identifier of a complex type (dense index into the type table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// ρ(t) in factored form: content model + the EDC-unique typing of the
/// names occurring in it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeDef {
    /// The content model (regex over `EName` + carried metadata).
    pub content: ContentModel,
    /// For each element name occurring in `content.regex`, the type of
    /// that child. EDC is structural: a map cannot assign two types.
    pub child_type: BTreeMap<Sym, TypeId>,
}

/// A core XSD (Definition 2).
#[derive(Clone, Debug)]
pub struct Xsd {
    /// The element-name alphabet `EName`.
    pub ename: Alphabet,
    type_names: Vec<String>,
    types: Vec<TypeDef>,
    /// T0 as a map (EDC on start elements is structural too).
    t0: BTreeMap<Sym, TypeId>,
}

/// Errors detected when assembling an XSD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XsdError {
    /// A content model violates UPA.
    NotDeterministic {
        /// Offending type.
        type_name: String,
        /// The witness from the checker.
        witness: NonDeterminism,
    },
    /// A name occurs in a content model without an assigned child type.
    MissingChildType {
        /// Offending type.
        type_name: String,
        /// The untyped element name.
        element: String,
    },
    /// A child-type entry references a type id out of range.
    DanglingType {
        /// Offending type.
        type_name: String,
    },
    /// Two types share a name.
    DuplicateTypeName(String),
}

impl fmt::Display for XsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsdError::NotDeterministic { type_name, witness } => {
                write!(
                    f,
                    "content model of type {type_name} violates UPA: {witness}"
                )
            }
            XsdError::MissingChildType { type_name, element } => write!(
                f,
                "element {element} in content of type {type_name} has no assigned type"
            ),
            XsdError::DanglingType { type_name } => {
                write!(f, "type {type_name} references an unknown type")
            }
            XsdError::DuplicateTypeName(n) => write!(f, "duplicate type name {n}"),
        }
    }
}

impl std::error::Error for XsdError {}

impl Xsd {
    /// Assembles and checks an XSD.
    ///
    /// `types` pairs names with definitions; `t0` maps root element names
    /// to their types. Checks UPA, completeness of child typings, and
    /// referential integrity. (EDC holds by construction.)
    pub fn new(
        ename: Alphabet,
        types: Vec<(String, TypeDef)>,
        t0: BTreeMap<Sym, TypeId>,
    ) -> Result<Xsd, XsdError> {
        let mut type_names = Vec::with_capacity(types.len());
        let mut defs = Vec::with_capacity(types.len());
        for (name, def) in types {
            if type_names.contains(&name) {
                return Err(XsdError::DuplicateTypeName(name));
            }
            type_names.push(name);
            defs.push(def);
        }
        let xsd = Xsd {
            ename,
            type_names,
            types: defs,
            t0,
        };
        xsd.check()?;
        Ok(xsd)
    }

    /// Assembles an XSD without running [`Xsd::new`]'s checks.
    ///
    /// UPA, child-typing completeness, referential integrity, and name
    /// uniqueness are all skipped (duplicate names are kept; lookups find
    /// the first). For analysis tooling that diagnoses those problems
    /// itself — validation against such a schema is not meaningful.
    pub fn new_unchecked(
        ename: Alphabet,
        types: Vec<(String, TypeDef)>,
        t0: BTreeMap<Sym, TypeId>,
    ) -> Xsd {
        let (type_names, defs) = types.into_iter().unzip();
        Xsd {
            ename,
            type_names,
            types: defs,
            t0,
        }
    }

    fn check(&self) -> Result<(), XsdError> {
        let n = self.types.len();
        for (name, def) in self.type_names.iter().zip(&self.types) {
            def.content
                .check_deterministic()
                .map_err(|witness| XsdError::NotDeterministic {
                    type_name: name.clone(),
                    witness,
                })?;
            for sym in def.content.regex.symbols() {
                match def.child_type.get(&sym) {
                    None => {
                        return Err(XsdError::MissingChildType {
                            type_name: name.clone(),
                            element: self.ename.name(sym).to_owned(),
                        })
                    }
                    Some(t) if t.index() >= n => {
                        return Err(XsdError::DanglingType {
                            type_name: name.clone(),
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        for t in self.t0.values() {
            if t.index() >= n {
                return Err(XsdError::DanglingType {
                    type_name: "<root>".to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Number of complex types.
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// All type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// The name of a type.
    pub fn type_name(&self, t: TypeId) -> &str {
        &self.type_names[t.index()]
    }

    /// Looks up a type by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_names
            .iter()
            .position(|n| n == name)
            .map(|i| TypeId(i as u32))
    }

    /// The definition ρ(t).
    pub fn type_def(&self, t: TypeId) -> &TypeDef {
        &self.types[t.index()]
    }

    /// The content model of a type.
    pub fn content(&self, t: TypeId) -> &ContentModel {
        &self.types[t.index()].content
    }

    /// The unique type of child element `name` within ρ(t) (EDC).
    pub fn child_type(&self, t: TypeId, name: Sym) -> Option<TypeId> {
        self.types[t.index()].child_type.get(&name).copied()
    }

    /// The typed start elements T0.
    pub fn start_elements(&self) -> &BTreeMap<Sym, TypeId> {
        &self.t0
    }

    /// The set S of allowed root element names.
    pub fn root_names(&self) -> Vec<Sym> {
        self.t0.keys().copied().collect()
    }

    /// The paper's size measure: total number of symbol occurrences over
    /// all content models, plus the number of types (so that "trivial"
    /// types still count).
    pub fn size(&self) -> usize {
        self.types.len() + self.types.iter().map(|d| d.content.size()).sum::<usize>()
    }
}

/// Incremental construction of XSDs (used by the XML-syntax reader, the
/// translations, and the generators).
#[derive(Clone, Debug, Default)]
pub struct XsdBuilder {
    /// Element-name alphabet being accumulated.
    pub ename: Alphabet,
    types: Vec<(String, TypeDef)>,
    t0: BTreeMap<Sym, TypeId>,
}

impl XsdBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the next type id for `name` with a placeholder definition;
    /// the definition can be filled in later with [`XsdBuilder::define`].
    pub fn declare_type(&mut self, name: &str) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push((
            name.to_owned(),
            TypeDef {
                content: ContentModel::empty(),
                child_type: BTreeMap::new(),
            },
        ));
        id
    }

    /// Fills in the definition of a previously declared type.
    pub fn define(&mut self, t: TypeId, def: TypeDef) {
        self.types[t.index()].1 = def;
    }

    /// Declares a typed start element.
    pub fn add_start(&mut self, name: Sym, t: TypeId) {
        self.t0.insert(name, t);
    }

    /// Finalizes, running all checks.
    pub fn build(self) -> Result<Xsd, XsdError> {
        Xsd::new(self.ename, self.types, self.t0)
    }

    /// Finalizes without checks; see [`Xsd::new_unchecked`].
    pub fn build_unchecked(self) -> Xsd {
        Xsd::new_unchecked(self.ename, self.types, self.t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relang::Regex;

    /// The skeleton of the paper's running example (Figure 3), reduced to
    /// document/template/content/section.
    pub(crate) fn example_xsd() -> Xsd {
        let mut b = XsdBuilder::new();
        let document = b.ename.intern("document");
        let template = b.ename.intern("template");
        let content = b.ename.intern("content");
        let section = b.ename.intern("section");

        let t_doc = b.declare_type("Tdoc");
        let t_template = b.declare_type("Ttemplate");
        let t_content = b.declare_type("Tcontent");
        let t_tsec = b.declare_type("TtemplateSection");
        let t_sec = b.declare_type("Tsection");

        b.define(
            t_doc,
            TypeDef {
                content: ContentModel::new(Regex::concat(vec![
                    Regex::sym(template),
                    Regex::sym(content),
                ])),
                child_type: [(template, t_template), (content, t_content)].into(),
            },
        );
        b.define(
            t_template,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(section))),
                child_type: [(section, t_tsec)].into(),
            },
        );
        b.define(
            t_content,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(section))),
                child_type: [(section, t_sec)].into(),
            },
        );
        b.define(
            t_tsec,
            TypeDef {
                content: ContentModel::new(Regex::opt(Regex::sym(section))),
                child_type: [(section, t_tsec)].into(),
            },
        );
        b.define(
            t_sec,
            TypeDef {
                content: ContentModel::new(Regex::star(Regex::sym(section))).with_mixed(true),
                child_type: [(section, t_sec)].into(),
            },
        );
        b.add_start(document, t_doc);
        b.build().unwrap()
    }

    #[test]
    fn example_builds_and_queries() {
        let x = example_xsd();
        assert_eq!(x.n_types(), 5);
        let t_doc = x.type_by_name("Tdoc").unwrap();
        let template = x.ename.lookup("template").unwrap();
        let section = x.ename.lookup("section").unwrap();
        let t_template = x.child_type(t_doc, template).unwrap();
        assert_eq!(x.type_name(t_template), "Ttemplate");
        let t_tsec = x.child_type(t_template, section).unwrap();
        // recursion: template sections contain template sections
        assert_eq!(x.child_type(t_tsec, section), Some(t_tsec));
        assert_eq!(x.root_names(), vec![x.ename.lookup("document").unwrap()]);
        assert!(x.size() >= 5);
    }

    #[test]
    fn upa_violation_rejected() {
        let mut b = XsdBuilder::new();
        let a = b.ename.intern("a");
        let bsym = b.ename.intern("b");
        let t = b.declare_type("T");
        // (a+b)* a is not deterministic
        b.define(
            t,
            TypeDef {
                content: ContentModel::new(Regex::concat(vec![
                    Regex::star(Regex::alt(vec![Regex::sym(a), Regex::sym(bsym)])),
                    Regex::sym(a),
                ])),
                child_type: [(a, t), (bsym, t)].into(),
            },
        );
        b.add_start(a, t);
        assert!(matches!(b.build(), Err(XsdError::NotDeterministic { .. })));
    }

    #[test]
    fn missing_child_type_rejected() {
        let mut b = XsdBuilder::new();
        let a = b.ename.intern("a");
        let t = b.declare_type("T");
        b.define(
            t,
            TypeDef {
                content: ContentModel::new(Regex::sym(a)),
                child_type: BTreeMap::new(),
            },
        );
        assert!(matches!(b.build(), Err(XsdError::MissingChildType { .. })));
    }

    #[test]
    fn dangling_type_rejected() {
        let mut b = XsdBuilder::new();
        let a = b.ename.intern("a");
        let t = b.declare_type("T");
        b.define(
            t,
            TypeDef {
                content: ContentModel::new(Regex::sym(a)),
                child_type: [(a, TypeId(99))].into(),
            },
        );
        assert!(matches!(b.build(), Err(XsdError::DanglingType { .. })));
    }

    #[test]
    fn duplicate_type_name_rejected() {
        let mut b = XsdBuilder::new();
        b.declare_type("T");
        b.declare_type("T");
        assert!(matches!(b.build(), Err(XsdError::DuplicateTypeName(_))));
    }
}
