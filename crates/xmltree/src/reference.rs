//! The previous byte-at-a-time streaming reader, kept as a behavioral
//! reference for the zero-copy lexer in [`crate::stream`].
//!
//! This is the reader that shipped before the zero-copy front end: it
//! materializes an owned [`XmlEvent`] per pull, bumping one byte at a
//! time. It is not used by the parser or validators — its sole job is to
//! pin the new lexer's semantics: a differential proptest
//! (`tests/reader_differential.rs`) demands the new reader's token
//! stream, after materialization via [`crate::XmlToken::to_event`],
//! be byte-identical (payloads *and* positions) to this one over random
//! documents on both byte sources.
//!
//! Hidden from docs; not part of the crate's supported API.

use std::collections::BTreeMap;

use crate::error::{ParseError, Position};
use crate::stream::{
    decode_char_ref, expand_rec, is_name_char, is_name_start, predefined_entity, ByteSrc, IoSrc,
    SliceSrc, XmlEvent,
};
use crate::tree::Attribute;
use std::io::Read;

/// Where the reader is in the document grammar.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    Prolog,
    Content,
    Epilog,
    Done,
}

/// The pre-zero-copy pull parser; see the module docs.
pub struct XmlReader<S> {
    src: S,
    offset: usize,
    line: u32,
    line_start: usize,
    entities: BTreeMap<String, String>,
    expanded: BTreeMap<String, String>,
    open: Vec<String>,
    stage: Stage,
    pending_end: Option<(String, Position)>,
}

impl<'a> XmlReader<SliceSrc<'a>> {
    /// Streams over an in-memory document.
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(input: &'a str) -> Self {
        XmlReader::with_source(SliceSrc::new(input.as_bytes()))
    }
}

impl<R: Read> XmlReader<IoSrc<R>> {
    /// Streams over any [`Read`] with a rolling window.
    pub fn from_reader(src: R) -> Self {
        XmlReader::with_source(IoSrc::new(src))
    }
}

impl<S: ByteSrc> XmlReader<S> {
    /// Wraps an arbitrary byte source.
    pub fn with_source(src: S) -> Self {
        XmlReader {
            src,
            offset: 0,
            line: 1,
            line_start: 0,
            entities: BTreeMap::new(),
            expanded: BTreeMap::new(),
            open: Vec::new(),
            stage: Stage::Prolog,
            pending_end: None,
        }
    }

    /// The current cursor position.
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.offset - self.line_start) as u32 + 1,
            offset: self.offset,
        }
    }

    /// Current element nesting depth (0 outside the root element).
    pub fn depth(&self) -> usize {
        self.open.len() + usize::from(self.pending_end.is_some())
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    #[inline]
    fn peek(&mut self) -> Option<u8> {
        self.src.window(1).first().copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.src.advance(1);
        self.offset += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.offset;
        }
        Some(c)
    }

    fn starts_with(&mut self, s: &str) -> bool {
        self.src.window(s.len()).starts_with(s.as_bytes())
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Pulls the next event. After [`XmlEvent::EndDocument`], returns
    /// `EndDocument` forever.
    pub fn next_event(&mut self) -> Result<XmlEvent, ParseError> {
        match self.stage {
            Stage::Prolog => self.next_prolog(),
            Stage::Content => self.next_content(),
            Stage::Epilog => self.next_epilog(),
            Stage::Done => Ok(XmlEvent::EndDocument),
        }
    }

    fn next_prolog(&mut self) -> Result<XmlEvent, ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                let (name, internal_subset) = self.parse_doctype()?;
                return Ok(XmlEvent::Doctype {
                    name,
                    internal_subset,
                });
            } else if self.peek() == Some(b'<') {
                self.stage = Stage::Content;
                return self.read_start_tag();
            } else {
                return Err(self.err("expected root element"));
            }
        }
    }

    fn next_content(&mut self) -> Result<XmlEvent, ParseError> {
        if let Some((name, position)) = self.pending_end.take() {
            if self.open.is_empty() {
                self.stage = Stage::Epilog;
            }
            return Ok(XmlEvent::EndElement { name, position });
        }
        let mut text = String::new();
        let mut text_pos = self.position();
        loop {
            match self.peek() {
                None => {
                    let name = self.open.last().cloned().unwrap_or_default();
                    return Err(self.err(format!("unexpected end of input in <{name}>")));
                }
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        if text.is_empty() {
                            text_pos = self.position();
                        }
                        self.read_cdata(&mut text)?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else if !text.is_empty() {
                        // A real tag follows: flush the coalesced run
                        // first, leaving the cursor on the `<`.
                        return Ok(XmlEvent::Text {
                            text,
                            position: text_pos,
                        });
                    } else if self.starts_with("</") {
                        return self.read_end_tag();
                    } else {
                        return self.read_start_tag();
                    }
                }
                Some(b'&') => {
                    if text.is_empty() {
                        text_pos = self.position();
                    }
                    let resolved = self.parse_entity_ref()?;
                    text.push_str(&resolved);
                }
                Some(_) => {
                    if text.is_empty() {
                        text_pos = self.position();
                    }
                    self.read_char_into(&mut text)?;
                }
            }
        }
    }

    fn next_epilog(&mut self) -> Result<XmlEvent, ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.peek().is_some() {
                return Err(self.err("unexpected content after root element"));
            } else {
                self.stage = Stage::Done;
                return Ok(XmlEvent::EndDocument);
            }
        }
    }

    /// Consumes one character of content (multi-byte sequences are
    /// re-validated as UTF-8) into `out`.
    fn read_char_into(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.bump().expect("peeked");
        if c < 0x80 {
            out.push(c as char);
            return Ok(());
        }
        // Collect the continuation bytes of this sequence (at most 3).
        let mut seq = [c, 0, 0, 0];
        let mut len = 1;
        while len < 4 {
            match self.peek() {
                Some(b) if b & 0xC0 == 0x80 => {
                    seq[len] = b;
                    len += 1;
                    self.bump();
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&seq[..len]).map_err(|_| self.err("invalid UTF-8 sequence"))?;
        out.push_str(s);
        Ok(())
    }

    fn read_start_tag(&mut self) -> Result<XmlEvent, ParseError> {
        let position = self.position();
        self.expect_str("<")?;
        let name = self.parse_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => break,
                _ => {}
            }
            let attr_name = self.parse_name()?;
            self.skip_ws();
            self.expect_str("=")?;
            self.skip_ws();
            let value = self.parse_attr_value()?;
            if attributes.iter().any(|a| a.name == attr_name) {
                return Err(self.err(format!("duplicate attribute {attr_name:?}")));
            }
            attributes.push(Attribute {
                name: attr_name,
                value,
            });
        }
        self.skip_ws();
        let self_closing = if self.starts_with("/>") {
            self.expect_str("/>")?;
            true
        } else {
            self.expect_str(">")?;
            false
        };
        if self_closing {
            self.pending_end = Some((name.clone(), self.position()));
        } else {
            self.open.push(name.clone());
        }
        Ok(XmlEvent::StartElement {
            name,
            attributes,
            self_closing,
            position,
        })
    }

    fn read_end_tag(&mut self) -> Result<XmlEvent, ParseError> {
        let position = self.position();
        self.expect_str("</")?;
        let close = self.parse_name()?;
        let expected = self.open.last().expect("content stage has an open element");
        if close != *expected {
            return Err(self.err(format!(
                "mismatched close tag: expected </{expected}>, found </{close}>"
            )));
        }
        self.skip_ws();
        self.expect_str(">")?;
        self.open.pop();
        if self.open.is_empty() {
            self.stage = Stage::Epilog;
        }
        Ok(XmlEvent::EndElement {
            name: close,
            position,
        })
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    let resolved = self.parse_entity_ref()?;
                    value.push_str(&resolved);
                }
                Some(_) => self.read_char_into(&mut value)?,
            }
        }
    }

    /// Resolves `&…;` at the cursor: a character reference (validated
    /// against the XML `Char` production) or a general entity (expanded
    /// recursively with depth/size guards).
    fn parse_entity_ref(&mut self) -> Result<String, ParseError> {
        let pos = self.position();
        self.expect_str("&")?;
        if self.peek() == Some(b'#') {
            self.bump();
            let (radix, digits_ok): (u32, fn(u8) -> bool) = if self.peek() == Some(b'x') {
                self.bump();
                (16, |c: u8| c.is_ascii_hexdigit())
            } else {
                (10, |c: u8| c.is_ascii_digit())
            };
            let mut digits = String::new();
            while matches!(self.peek(), Some(c) if digits_ok(c)) {
                digits.push(self.bump().expect("peeked") as char);
            }
            if digits.is_empty() {
                return Err(self.err("empty character reference"));
            }
            self.expect_str(";")?;
            let ch = decode_char_ref(&digits, radix).map_err(|msg| ParseError::new(pos, msg))?;
            return Ok(ch.to_string());
        }
        let name = self.parse_name()?;
        self.expect_str(";")?;
        if let Some(predef) = predefined_entity(&name) {
            return Ok(predef.to_owned());
        }
        self.expand_entity(&name, pos)
    }

    /// Fully expands general entity `name`, resolving nested references
    /// in its replacement text. Memoized per entity.
    fn expand_entity(&mut self, name: &str, pos: Position) -> Result<String, ParseError> {
        if let Some(v) = self.expanded.get(name) {
            return Ok(v.clone());
        }
        if !self.entities.contains_key(name) {
            return Err(ParseError::new(pos, format!("undeclared entity &{name};")));
        }
        let mut active: Vec<&str> = Vec::new();
        let mut produced = 0usize;
        let out = expand_rec(&self.entities, name, &mut active, &mut produced, pos)?;
        self.expanded.insert(name.to_owned(), out.clone());
        Ok(out)
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let mut raw = Vec::new();
        match self.peek() {
            Some(c) if is_name_start(c) => {
                raw.push(c);
                self.bump();
            }
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            raw.push(self.bump().expect("peeked"));
        }
        String::from_utf8(raw).map_err(|_| self.err("invalid UTF-8 in name"))
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect_str("<!--")?;
        loop {
            if self.starts_with("-->") {
                return self.expect_str("-->");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect_str("<?")?;
        loop {
            if self.starts_with("?>") {
                return self.expect_str("?>");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
    }

    fn read_cdata(&mut self, text: &mut String) -> Result<(), ParseError> {
        self.expect_str("<![CDATA[")?;
        let mut raw = Vec::new();
        loop {
            if self.starts_with("]]>") {
                let content =
                    std::str::from_utf8(&raw).map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                text.push_str(content);
                return self.expect_str("]]>");
            }
            match self.bump() {
                Some(b) => raw.push(b),
                None => return Err(self.err("unterminated CDATA section")),
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<(String, Option<String>), ParseError> {
        self.expect_str("<!DOCTYPE")?;
        self.skip_ws();
        let name = self.parse_name()?;
        self.skip_ws();
        // Optional external ID (SYSTEM/PUBLIC) — recorded but not fetched.
        if self.starts_with("SYSTEM") {
            self.expect_str("SYSTEM")?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
        } else if self.starts_with("PUBLIC") {
            self.expect_str("PUBLIC")?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
        }
        let mut subset = None;
        if self.peek() == Some(b'[') {
            self.bump();
            let subset_pos = self.position();
            let mut raw = Vec::new();
            let mut depth = 0usize;
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated DOCTYPE internal subset")),
                    Some(b'<') => {
                        depth += 1;
                        raw.push(b'<');
                        self.bump();
                    }
                    Some(b'>') => {
                        depth = depth.saturating_sub(1);
                        raw.push(b'>');
                        self.bump();
                    }
                    Some(b']') if depth == 0 => {
                        self.bump();
                        break;
                    }
                    Some(c) => {
                        raw.push(c);
                        self.bump();
                    }
                }
            }
            let text = String::from_utf8(raw).map_err(|_| self.err("invalid UTF-8 in DTD"))?;
            self.load_entities(&text, subset_pos)?;
            subset = Some(text);
            self.skip_ws();
        }
        self.expect_str(">")?;
        Ok((name, subset))
    }

    /// Extracts general-entity declarations from the internal subset.
    fn load_entities(&mut self, subset: &str, subset_pos: Position) -> Result<(), ParseError> {
        match crate::dtd::parser::parse_dtd(subset) {
            Ok(dtd) => {
                for (name, value) in dtd.general_entities {
                    self.entities.insert(name, value);
                }
                Ok(())
            }
            Err(e) => {
                // Translate the subset-relative position to the document.
                let position = Position {
                    line: subset_pos.line + e.position.line - 1,
                    column: if e.position.line == 1 {
                        subset_pos.column + e.position.column - 1
                    } else {
                        e.position.column
                    },
                    offset: subset_pos.offset + e.position.offset,
                };
                Err(ParseError::new(
                    position,
                    format!("in DTD internal subset: {}", e.message),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_reader_still_parses() {
        let mut r = XmlReader::from_str("<a x=\"1\"><b>h&amp;i</b><c/></a>");
        let mut n = 0;
        loop {
            match r.next_event().expect("valid") {
                XmlEvent::EndDocument => break,
                _ => n += 1,
            }
        }
        assert_eq!(n, 7);
    }
}
