//! Positioned errors for the XML and DTD parsers.

use std::fmt;

/// A position in the input text (1-based line/column, 0-based byte offset).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub column: u32,
    /// 0-based byte offset.
    pub offset: usize,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A parse error with a position and message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where the problem was detected.
    pub position: Position,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(position: Position, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}
