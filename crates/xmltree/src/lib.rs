//! # xmltree — the XML substrate of the BonXai implementation
//!
//! XML documents as finite, rooted, ordered, labeled, unranked trees
//! (Section 4.1 of the BonXai paper), plus everything needed to get them
//! in and out of text form, all built from scratch:
//!
//! * [`tree::Document`] — arena tree with `anc-str`/`ch-str` accessors;
//! * [`stream`] — a pull-based event reader (the single lexing front end;
//!   works over in-memory buffers or any `io::Read` in O(window) memory);
//! * [`parser`] — an XML 1.0 parser (prolog, DOCTYPE with internal subset,
//!   CDATA, entities) with positioned errors, built as a fold over
//!   [`stream`];
//! * [`serializer`] — compact and pretty writers;
//! * [`builder`] — programmatic document construction;
//! * [`dtd`] — Document Type Definitions: model, parser, validator (the
//!   paper's baseline schema language, cf. Figure 2).
//!
//! ```
//! use xmltree::{parse_document, dtd::parse_dtd, dtd::is_valid};
//! let doc = parse_document("<doc><title>hi</title></doc>").unwrap();
//! let dtd = parse_dtd("<!ELEMENT doc (title)> <!ELEMENT title (#PCDATA)>").unwrap();
//! assert!(is_valid(&dtd, &doc));
//! assert_eq!(doc.ch_str(doc.root()), vec!["title"]);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the SIMD structural-index kernels ([`simd`]) and
// the proven-UTF-8 slice materialization in [`stream`] carry the only
// `#[allow(unsafe_code)]` exemptions, each with a SAFETY argument.
#![deny(unsafe_code)]

pub mod builder;
pub mod dtd;
pub mod error;
pub mod parser;
#[doc(hidden)]
pub mod reference;
pub mod serializer;
pub mod simd;
pub mod stream;
pub mod tree;

pub use error::{ParseError, Position};
pub use parser::{parse, parse_document, parse_from_reader, ParsedXml};
pub use serializer::{to_string, to_string_pretty};
pub use simd::Engine;
pub use stream::{
    Attr, AttrList, EventSink, LazyName, NameId, TextChunk, TextInterest, XmlEvent, XmlReader,
    XmlToken,
};
pub use tree::{Attribute, Document, Edit, EditLog, ElementsIter, NodeId, NodeKind};
