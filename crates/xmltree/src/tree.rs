//! The XML document model: a finite, rooted, ordered, labeled, unranked
//! tree (Section 4.1 of the paper), with attributes and text.
//!
//! Nodes live in an arena owned by the [`Document`]; [`NodeId`]s are dense
//! indices. The two string accessors the paper's formal development is
//! built on — the *ancestor string* `anc-str(v)` and *child string*
//! `ch-str(v)` — are provided directly on the document.

use std::fmt;

/// Index of a node in a document's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// An attribute: name/value pair. Order of attributes is preserved as
/// written but is semantically irrelevant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    /// Attribute name (qualified as written, e.g. `xs:type` or `title`).
    pub name: String,
    /// Attribute value (entity references already resolved).
    pub value: String,
}

/// The payload of a node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An element with a name and attributes.
    Element {
        /// Element name (qualified as written).
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node (character data; CDATA sections are merged in).
    Text(String),
}

#[derive(Clone, Debug)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// `name_ids` marker for text nodes.
const TEXT_ID: u32 = u32::MAX;

/// Interns element names at construction time so consumers (validators in
/// particular) can resolve a node's name with one dense-array load instead
/// of hashing a string per node. Open addressing over FNV-1a, ≤ half full.
#[derive(Clone, Debug, Default)]
struct NameIndex {
    names: Vec<String>,
    slots: Vec<u32>,
}

impl NameIndex {
    /// One hash + one probe chain per call: a miss remembers the empty
    /// slot the probe stopped at and inserts there directly (the probe
    /// is not repeated, unlike the old lookup-then-insert scheme).
    fn intern(&mut self, name: &str) -> u32 {
        let mut slot = 0usize;
        if !self.slots.is_empty() {
            let mask = self.slots.len() - 1;
            slot = fnv1a(name) as usize & mask;
            loop {
                match self.slots[slot] {
                    0 => break,
                    s => {
                        if self.names[(s - 1) as usize] == name {
                            return s - 1;
                        }
                    }
                }
                slot = (slot + 1) & mask;
            }
        }
        let id = u32::try_from(self.names.len()).expect("name-id overflow");
        assert_ne!(id, TEXT_ID, "name-id overflow");
        self.names.push(name.to_owned());
        if (self.names.len() + 1) * 2 > self.slots.len() {
            let cap = (self.names.len() * 4).next_power_of_two().max(8);
            self.slots = vec![0; cap];
            for i in 0..self.names.len() as u32 {
                self.insert(i);
            }
        } else {
            self.slots[slot] = id + 1;
        }
        id
    }

    fn insert(&mut self, id: u32) {
        let mask = self.slots.len() - 1;
        let mut i = fnv1a(&self.names[id as usize]) as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = id + 1;
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An XML document: an arena of nodes with a single element root.
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<NodeData>,
    root: NodeId,
    /// Per node: interned name id (element) or [`TEXT_ID`] (text).
    name_ids: Vec<u32>,
    name_index: NameIndex,
}

impl Document {
    /// Creates a document whose root element has the given name.
    pub fn new(root_name: &str) -> Self {
        let mut name_index = NameIndex::default();
        let root_id = name_index.intern(root_name);
        Document {
            nodes: vec![NodeData {
                kind: NodeKind::Element {
                    name: root_name.to_owned(),
                    attributes: Vec::new(),
                },
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
            name_ids: vec![root_id],
            name_index,
        }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document has only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Appends a child element to `parent`, returning the new node.
    pub fn add_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let name_id = self.name_index.intern(name);
        self.push_element(parent, name, name_id)
    }

    /// [`Document::add_element`] with a caller-supplied dense name id
    /// hint. When `hint` is the id this document's interner has already
    /// assigned to `name` — e.g. a [`crate::stream::NameId`] from the
    /// streaming reader, whose first-occurrence order matches this
    /// interner's by construction — the hash lookup is skipped entirely.
    /// A hint that does not match falls back to a normal intern.
    pub fn add_element_hinted(&mut self, parent: NodeId, name: &str, hint: usize) -> NodeId {
        let name_id = match self.name_index.names.get(hint) {
            Some(known) if known == name => hint as u32,
            _ => self.name_index.intern(name),
        };
        self.push_element(parent, name, name_id)
    }

    fn push_element(&mut self, parent: NodeId, name: &str, name_id: u32) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Element {
                name: name.to_owned(),
                attributes: Vec::new(),
            },
            parent: Some(parent),
            children: Vec::new(),
        });
        self.name_ids.push(name_id);
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Appends a text child to `parent`, returning the new node.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Text(text.to_owned()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.name_ids.push(TEXT_ID);
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Sets (or replaces) an attribute on an element node.
    ///
    /// Panics if `node` is a text node.
    pub fn set_attribute(&mut self, node: NodeId, name: &str, value: &str) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value.to_owned();
                } else {
                    attributes.push(Attribute {
                        name: name.to_owned(),
                        value: value.to_owned(),
                    });
                }
            }
            NodeKind::Text(_) => panic!("cannot set attribute on a text node"),
        }
    }

    /// The node's payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.0].kind
    }

    /// The element name of `node`, or `None` for text nodes.
    pub fn name(&self, node: NodeId) -> Option<&str> {
        match &self.nodes[node.0].kind {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text(_) => None,
        }
    }

    /// The interned name id of an element node (`None` for text nodes).
    ///
    /// Ids are dense indices into [`Document::distinct_names`], assigned
    /// in first-occurrence order. Equal names share an id, so validators
    /// can resolve each distinct name against a schema alphabet once per
    /// document and then map nodes to symbols with a single array load —
    /// this is the per-child fast path of the BonXai validator.
    #[inline]
    pub fn name_id(&self, node: NodeId) -> Option<u32> {
        let id = self.name_ids[node.0];
        (id != TEXT_ID).then_some(id)
    }

    /// The distinct element names of this document, indexed by
    /// [`Document::name_id`].
    pub fn distinct_names(&self) -> &[String] {
        &self.name_index.names
    }

    /// The local part of the element name (after any `prefix:`).
    pub fn local_name(&self, node: NodeId) -> Option<&str> {
        self.name(node)
            .map(|n| n.rsplit_once(':').map_or(n, |(_, local)| local))
    }

    /// The text content of a text node, or `None` for elements.
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match &self.nodes[node.0].kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// Whether the node is an element.
    pub fn is_element(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.0].kind, NodeKind::Element { .. })
    }

    /// The node's parent.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0].parent
    }

    /// The node's children (elements and text), in document order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0].children
    }

    /// The node's element children only, in document order.
    pub fn element_children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node)
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// The attributes of an element (empty for text nodes).
    pub fn attributes(&self, node: NodeId) -> &[Attribute] {
        match &self.nodes[node.0].kind {
            NodeKind::Element { attributes, .. } => attributes,
            NodeKind::Text(_) => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.attributes(node)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The paper's `anc-str(v)`: the element names on the path from the
    /// root down to (and including) `v`.
    ///
    /// ```
    /// use xmltree::Document;
    /// let mut d = Document::new("document");
    /// let t = d.add_element(d.root(), "template");
    /// let s = d.add_element(t, "section");
    /// assert_eq!(d.anc_str(s), vec!["document", "template", "section"]);
    /// ```
    pub fn anc_str(&self, node: NodeId) -> Vec<&str> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            if let Some(name) = self.name(n) {
                path.push(name);
            }
            cur = self.parent(n);
        }
        path.reverse();
        path
    }

    /// The paper's `ch-str(v)`: the names of the element children of `v`,
    /// left to right. (Text children are not part of the child string; see
    /// the validators for how mixed content is treated.)
    pub fn ch_str(&self, node: NodeId) -> Vec<&str> {
        self.element_children(node)
            .map(|c| self.name(c).expect("element child has a name"))
            .collect()
    }

    /// Whether `node` has any non-whitespace text children.
    pub fn has_significant_text(&self, node: NodeId) -> bool {
        self.children(node).iter().any(|&c| {
            self.text(c)
                .is_some_and(|t| !t.chars().all(char::is_whitespace))
        })
    }

    /// All element nodes in depth-first (document) order, starting at the
    /// root.
    pub fn elements(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if self.is_element(n) {
                out.push(n);
                for &c in self.children(n).iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&i| self.is_element(NodeId(i)))
            .count()
    }

    /// Maximum depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        fn go(d: &Document, n: NodeId) -> usize {
            1 + d.element_children(n).map(|c| go(d, c)).max().unwrap_or(0)
        }
        go(self, self.root)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::serializer::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId) {
        let mut d = Document::new("document");
        let template = d.add_element(d.root(), "template");
        let content = d.add_element(d.root(), "content");
        let s1 = d.add_element(template, "section");
        d.set_attribute(s1, "title", "Intro");
        d.add_text(content, "hello");
        (d, template, s1)
    }

    #[test]
    fn structure_accessors() {
        let (d, template, s1) = sample();
        assert_eq!(d.name(d.root()), Some("document"));
        assert_eq!(d.parent(s1), Some(template));
        assert_eq!(d.parent(d.root()), None);
        assert_eq!(d.children(d.root()).len(), 2);
        assert_eq!(d.attribute(s1, "title"), Some("Intro"));
        assert_eq!(d.attribute(s1, "missing"), None);
    }

    #[test]
    fn anc_and_ch_str() {
        let (d, template, s1) = sample();
        assert_eq!(d.anc_str(s1), vec!["document", "template", "section"]);
        assert_eq!(d.ch_str(d.root()), vec!["template", "content"]);
        assert_eq!(d.ch_str(template), vec!["section"]);
        assert!(d.ch_str(s1).is_empty());
    }

    #[test]
    fn text_handling() {
        let (d, _, _) = sample();
        let content = d.children(d.root())[1];
        assert!(d.has_significant_text(content));
        assert!(!d.has_significant_text(d.root()));
        assert!(d.ch_str(content).is_empty());
    }

    #[test]
    fn set_attribute_replaces() {
        let (mut d, _, s1) = sample();
        d.set_attribute(s1, "title", "New");
        assert_eq!(d.attribute(s1, "title"), Some("New"));
        assert_eq!(d.attributes(s1).len(), 1);
    }

    #[test]
    fn elements_in_document_order() {
        let (d, _, _) = sample();
        let names: Vec<_> = d
            .elements()
            .into_iter()
            .map(|n| d.name(n).unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["document", "template", "section", "content"]);
    }

    #[test]
    fn name_ids_are_dense_and_shared() {
        let (d, template, s1) = sample();
        assert_eq!(d.name_id(d.root()), Some(0));
        assert_eq!(d.name_id(template), Some(1));
        assert_eq!(d.name_id(s1), Some(3)); // after "content"
        let text = d.children(d.children(d.root())[1])[0];
        assert_eq!(d.name_id(text), None);
        assert_eq!(
            d.distinct_names(),
            &["document", "template", "content", "section"]
        );
        // same name ⇒ same id
        let mut d2 = Document::new("a");
        let x = d2.add_element(d2.root(), "b");
        let y = d2.add_element(x, "b");
        assert_eq!(d2.name_id(x), d2.name_id(y));
    }

    #[test]
    fn local_name_strips_prefix() {
        let mut d = Document::new("xs:schema");
        assert_eq!(d.local_name(d.root()), Some("schema"));
        let e = d.add_element(d.root(), "element");
        assert_eq!(d.local_name(e), Some("element"));
    }

    #[test]
    fn depth_computation() {
        let (d, _, _) = sample();
        assert_eq!(d.depth(), 3);
        assert_eq!(Document::new("r").depth(), 1);
    }
}
