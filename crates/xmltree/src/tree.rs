//! The XML document model: a finite, rooted, ordered, labeled, unranked
//! tree (Section 4.1 of the paper), with attributes and text.
//!
//! Nodes live in an arena owned by the [`Document`]; [`NodeId`]s are dense
//! indices. The two string accessors the paper's formal development is
//! built on — the *ancestor string* `anc-str(v)` and *child string*
//! `ch-str(v)` — are provided directly on the document.

use std::fmt;

/// Index of a node in a document's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// An attribute: name/value pair. Order of attributes is preserved as
/// written but is semantically irrelevant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    /// Attribute name (qualified as written, e.g. `xs:type` or `title`).
    pub name: String,
    /// Attribute value (entity references already resolved).
    pub value: String,
}

/// The payload of a node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An element with a name and attributes.
    Element {
        /// Element name (qualified as written).
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node (character data; CDATA sections are merged in).
    Text(String),
}

#[derive(Clone, Debug)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// `name_ids` marker for text nodes.
const TEXT_ID: u32 = u32::MAX;

/// Interns element names at construction time so consumers (validators in
/// particular) can resolve a node's name with one dense-array load instead
/// of hashing a string per node. Open addressing over FNV-1a, ≤ half full.
#[derive(Clone, Debug, Default)]
struct NameIndex {
    names: Vec<String>,
    slots: Vec<u32>,
}

impl NameIndex {
    /// One hash + one probe chain per call: a miss remembers the empty
    /// slot the probe stopped at and inserts there directly (the probe
    /// is not repeated, unlike the old lookup-then-insert scheme).
    fn intern(&mut self, name: &str) -> u32 {
        let mut slot = 0usize;
        if !self.slots.is_empty() {
            let mask = self.slots.len() - 1;
            slot = fnv1a(name) as usize & mask;
            loop {
                match self.slots[slot] {
                    0 => break,
                    s => {
                        if self.names[(s - 1) as usize] == name {
                            return s - 1;
                        }
                    }
                }
                slot = (slot + 1) & mask;
            }
        }
        let id = u32::try_from(self.names.len()).expect("name-id overflow");
        assert_ne!(id, TEXT_ID, "name-id overflow");
        self.names.push(name.to_owned());
        if (self.names.len() + 1) * 2 > self.slots.len() {
            let cap = (self.names.len() * 4).next_power_of_two().max(8);
            self.slots = vec![0; cap];
            for i in 0..self.names.len() as u32 {
                self.insert(i);
            }
        } else {
            self.slots[slot] = id + 1;
        }
        id
    }

    fn insert(&mut self, id: u32) {
        let mask = self.slots.len() - 1;
        let mut i = fnv1a(&self.names[id as usize]) as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = id + 1;
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One entry in a [`Document`]'s [`EditLog`]: the smallest unit of
/// damage an incremental consumer must repair.
///
/// The variants are deliberately coarse — a consumer that re-examines
/// the subtree under every `Dirty` node, discards state for every
/// `Detached` node, and restarts from scratch on `RootReplaced` sees
/// every effect of the mutation API.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Edit {
    /// The element's label, attributes, child list, or a text child
    /// changed: its subtree must be re-examined.
    Dirty(NodeId),
    /// The subtree rooted here was disconnected from the tree (by
    /// [`Document::remove_child`] or [`Document::replace_subtree`]);
    /// any per-node state for it is stale and must be dropped.
    Detached(NodeId),
    /// The root element itself was replaced: nothing survives.
    RootReplaced,
}

/// An append-only log of [`Edit`]s, each stamped with the document
/// generation the mutation produced. Enabled with
/// [`Document::enable_edit_log`]; the parser never enables it, so the
/// construction hot path pays only the generation increment.
#[derive(Clone, Debug, Default)]
pub struct EditLog {
    /// `(generation, edit)` pairs in the order applied. Generations are
    /// non-decreasing (one mutation may emit several entries).
    entries: Vec<(u64, Edit)>,
}

impl EditLog {
    /// Every logged edit, oldest first, with its generation stamp.
    pub fn entries(&self) -> &[(u64, Edit)] {
        &self.entries
    }

    /// The edits applied strictly after `generation` — the delta a
    /// consumer whose state was captured at `generation` must replay.
    pub fn since(&self, generation: u64) -> &[(u64, Edit)] {
        let start = self.entries.partition_point(|&(g, _)| g <= generation);
        &self.entries[start..]
    }

    /// Whether no edits have been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An XML document: an arena of nodes with a single element root.
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<NodeData>,
    root: NodeId,
    /// Per node: interned name id (element) or [`TEXT_ID`] (text).
    name_ids: Vec<u32>,
    name_index: NameIndex,
    /// Bumped by every mutation; lets consumers detect staleness.
    generation: u64,
    /// Mutation log, present once [`Document::enable_edit_log`] ran.
    edit_log: Option<EditLog>,
}

impl Document {
    /// Creates a document whose root element has the given name.
    pub fn new(root_name: &str) -> Self {
        let mut name_index = NameIndex::default();
        let root_id = name_index.intern(root_name);
        Document {
            nodes: vec![NodeData {
                kind: NodeKind::Element {
                    name: root_name.to_owned(),
                    attributes: Vec::new(),
                },
                parent: None,
                children: Vec::new(),
            }],
            root: NodeId(0),
            name_ids: vec![root_id],
            name_index,
            generation: 0,
            edit_log: None,
        }
    }

    /// The document's generation: incremented by every mutation.
    /// Consumers snapshot it to tell whether their derived state is
    /// stale and which [`EditLog`] suffix to replay.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Starts recording mutations into an [`EditLog`]. Idempotent; a
    /// freshly parsed or built document does not log (construction is
    /// not an edit).
    pub fn enable_edit_log(&mut self) {
        if self.edit_log.is_none() {
            self.edit_log = Some(EditLog::default());
        }
    }

    /// The edit log, if [`Document::enable_edit_log`] was called.
    pub fn edit_log(&self) -> Option<&EditLog> {
        self.edit_log.as_ref()
    }

    /// Drops all logged entries (logging stays enabled). Called after a
    /// consumer has replayed the log against its state.
    pub fn clear_edit_log(&mut self) {
        if let Some(log) = &mut self.edit_log {
            log.entries.clear();
        }
    }

    /// Stamps one mutation: bumps the generation and, when logging is
    /// on, appends the edits under that single new generation.
    fn log_edits(&mut self, edits: &[Edit]) {
        self.generation += 1;
        if let Some(log) = &mut self.edit_log {
            let generation = self.generation;
            log.entries.extend(edits.iter().map(|&e| (generation, e)));
        }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document has only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Appends a child element to `parent`, returning the new node.
    pub fn add_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let name_id = self.name_index.intern(name);
        self.push_element(parent, name, name_id)
    }

    /// [`Document::add_element`] with a caller-supplied dense name id
    /// hint. When `hint` is the id this document's interner has already
    /// assigned to `name` — e.g. a [`crate::stream::NameId`] from the
    /// streaming reader, whose first-occurrence order matches this
    /// interner's by construction — the hash lookup is skipped entirely.
    /// A hint that does not match falls back to a normal intern.
    pub fn add_element_hinted(&mut self, parent: NodeId, name: &str, hint: usize) -> NodeId {
        let name_id = match self.name_index.names.get(hint) {
            Some(known) if known == name => hint as u32,
            _ => self.name_index.intern(name),
        };
        self.push_element(parent, name, name_id)
    }

    fn push_element(&mut self, parent: NodeId, name: &str, name_id: u32) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Element {
                name: name.to_owned(),
                attributes: Vec::new(),
            },
            parent: Some(parent),
            children: Vec::new(),
        });
        self.name_ids.push(name_id);
        self.nodes[parent.0].children.push(id);
        self.log_edits(&[Edit::Dirty(parent)]);
        id
    }

    /// Appends a text child to `parent`, returning the new node.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Text(text.to_owned()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.name_ids.push(TEXT_ID);
        self.nodes[parent.0].children.push(id);
        self.log_edits(&[Edit::Dirty(parent)]);
        id
    }

    /// Sets (or replaces) an attribute on an element node.
    ///
    /// Panics if `node` is a text node.
    pub fn set_attribute(&mut self, node: NodeId, name: &str, value: &str) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value.to_owned();
                } else {
                    attributes.push(Attribute {
                        name: name.to_owned(),
                        value: value.to_owned(),
                    });
                }
            }
            NodeKind::Text(_) => panic!("cannot set attribute on a text node"),
        }
        self.log_edits(&[Edit::Dirty(node)]);
    }

    /// Removes an attribute from an element node (no-op if absent).
    ///
    /// Panics if `node` is a text node.
    pub fn remove_attribute(&mut self, node: NodeId, name: &str) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Element { attributes, .. } => {
                attributes.retain(|a| a.name != name);
            }
            NodeKind::Text(_) => panic!("cannot remove attribute from a text node"),
        }
        self.log_edits(&[Edit::Dirty(node)]);
    }

    /// Replaces the content of a text node.
    ///
    /// Panics if `node` is not a text node.
    pub fn set_text(&mut self, node: NodeId, text: &str) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Text(t) => *t = text.to_owned(),
            NodeKind::Element { .. } => panic!("set_text on an element node"),
        }
        // Text verdicts live on the enclosing element, so the damage is
        // the parent's, not the text node's.
        let parent = self.nodes[node.0].parent.expect("text node has a parent");
        self.log_edits(&[Edit::Dirty(parent)]);
    }

    /// Inserts a new element named `name` as the `index`-th child of
    /// `parent` (panics if `index > children.len()`), returning it.
    pub fn insert_child(&mut self, parent: NodeId, index: usize, name: &str) -> NodeId {
        let name_id = self.name_index.intern(name);
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Element {
                name: name.to_owned(),
                attributes: Vec::new(),
            },
            parent: Some(parent),
            children: Vec::new(),
        });
        self.name_ids.push(name_id);
        self.nodes[parent.0].children.insert(index, id);
        self.log_edits(&[Edit::Dirty(parent)]);
        id
    }

    /// Inserts a new text node as the `index`-th child of `parent`
    /// (panics if `index > children.len()`), returning it.
    pub fn insert_text(&mut self, parent: NodeId, index: usize, text: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            kind: NodeKind::Text(text.to_owned()),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.name_ids.push(TEXT_ID);
        self.nodes[parent.0].children.insert(index, id);
        self.log_edits(&[Edit::Dirty(parent)]);
        id
    }

    /// Detaches `child` (and its whole subtree) from `parent`.
    ///
    /// The nodes stay in the arena — ids are never reused — but are no
    /// longer reachable from the root; traversals skip them. Panics if
    /// `child` is not a child of `parent`.
    pub fn remove_child(&mut self, parent: NodeId, child: NodeId) {
        let children = &mut self.nodes[parent.0].children;
        let pos = children
            .iter()
            .position(|&c| c == child)
            .expect("remove_child: not a child of parent");
        children.remove(pos);
        self.nodes[child.0].parent = None;
        self.log_edits(&[Edit::Dirty(parent), Edit::Detached(child)]);
    }

    /// Replaces the subtree rooted at `target` with a deep copy of the
    /// subtree rooted at `src_node` in `src`, returning the copy's root
    /// (a fresh node in this document). The old subtree is detached, as
    /// in [`Document::remove_child`]. Replacing the document root swaps
    /// the root pointer itself and logs [`Edit::RootReplaced`].
    ///
    /// Panics if `src_node` is not an element.
    pub fn replace_subtree(&mut self, target: NodeId, src: &Document, src_node: NodeId) -> NodeId {
        assert!(
            src.is_element(src_node),
            "replace_subtree: src not an element"
        );
        let parent = self.nodes[target.0].parent;
        let new_root = self.deep_copy(parent, src, src_node);
        match parent {
            Some(p) => {
                let children = &mut self.nodes[p.0].children;
                let pos = children
                    .iter()
                    .position(|&c| c == target)
                    .expect("replace_subtree: target detached");
                // deep_copy appended the copy at the end; move it into
                // the old slot.
                let appended = children.pop().expect("copy was appended");
                debug_assert_eq!(appended, new_root);
                children[pos] = new_root;
                self.nodes[target.0].parent = None;
                self.log_edits(&[Edit::Dirty(p), Edit::Detached(target)]);
            }
            None => {
                assert_eq!(target, self.root, "replace_subtree: target is detached");
                self.root = new_root;
                self.log_edits(&[Edit::RootReplaced, Edit::Detached(target)]);
            }
        }
        new_root
    }

    /// Appends a structural copy of `src`'s subtree at `src_node` under
    /// `parent` (or detached when `parent` is `None`), interning names
    /// into this document. Children recurse in order, so every copied
    /// parent has a smaller id than its children.
    fn deep_copy(&mut self, parent: Option<NodeId>, src: &Document, src_node: NodeId) -> NodeId {
        let id = NodeId(self.nodes.len());
        match src.kind(src_node) {
            NodeKind::Element { name, attributes } => {
                let name_id = self.name_index.intern(name);
                self.nodes.push(NodeData {
                    kind: NodeKind::Element {
                        name: name.clone(),
                        attributes: attributes.clone(),
                    },
                    parent,
                    children: Vec::new(),
                });
                self.name_ids.push(name_id);
            }
            NodeKind::Text(t) => {
                self.nodes.push(NodeData {
                    kind: NodeKind::Text(t.clone()),
                    parent,
                    children: Vec::new(),
                });
                self.name_ids.push(TEXT_ID);
            }
        }
        if let Some(p) = parent {
            self.nodes[p.0].children.push(id);
        }
        for &c in src.children(src_node) {
            self.deep_copy(Some(id), src, c);
        }
        id
    }

    /// The node's payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.0].kind
    }

    /// The element name of `node`, or `None` for text nodes.
    pub fn name(&self, node: NodeId) -> Option<&str> {
        match &self.nodes[node.0].kind {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text(_) => None,
        }
    }

    /// The interned name id of an element node (`None` for text nodes).
    ///
    /// Ids are dense indices into [`Document::distinct_names`], assigned
    /// in first-occurrence order. Equal names share an id, so validators
    /// can resolve each distinct name against a schema alphabet once per
    /// document and then map nodes to symbols with a single array load —
    /// this is the per-child fast path of the BonXai validator.
    #[inline]
    pub fn name_id(&self, node: NodeId) -> Option<u32> {
        let id = self.name_ids[node.0];
        (id != TEXT_ID).then_some(id)
    }

    /// The distinct element names of this document, indexed by
    /// [`Document::name_id`].
    pub fn distinct_names(&self) -> &[String] {
        &self.name_index.names
    }

    /// The local part of the element name (after any `prefix:`).
    pub fn local_name(&self, node: NodeId) -> Option<&str> {
        self.name(node)
            .map(|n| n.rsplit_once(':').map_or(n, |(_, local)| local))
    }

    /// The text content of a text node, or `None` for elements.
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match &self.nodes[node.0].kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// Whether the node is an element.
    pub fn is_element(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.0].kind, NodeKind::Element { .. })
    }

    /// The node's parent.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0].parent
    }

    /// The node's children (elements and text), in document order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0].children
    }

    /// The node's element children only, in document order.
    pub fn element_children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node)
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// The attributes of an element (empty for text nodes).
    pub fn attributes(&self, node: NodeId) -> &[Attribute] {
        match &self.nodes[node.0].kind {
            NodeKind::Element { attributes, .. } => attributes,
            NodeKind::Text(_) => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, node: NodeId, name: &str) -> Option<&str> {
        self.attributes(node)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The paper's `anc-str(v)`: the element names on the path from the
    /// root down to (and including) `v`.
    ///
    /// ```
    /// use xmltree::Document;
    /// let mut d = Document::new("document");
    /// let t = d.add_element(d.root(), "template");
    /// let s = d.add_element(t, "section");
    /// assert_eq!(d.anc_str(s), vec!["document", "template", "section"]);
    /// ```
    pub fn anc_str(&self, node: NodeId) -> Vec<&str> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            if let Some(name) = self.name(n) {
                path.push(name);
            }
            cur = self.parent(n);
        }
        path.reverse();
        path
    }

    /// The paper's `ch-str(v)`: the names of the element children of `v`,
    /// left to right. (Text children are not part of the child string; see
    /// the validators for how mixed content is treated.)
    pub fn ch_str(&self, node: NodeId) -> Vec<&str> {
        self.element_children(node)
            .map(|c| self.name(c).expect("element child has a name"))
            .collect()
    }

    /// Whether `node` has any non-whitespace text children.
    pub fn has_significant_text(&self, node: NodeId) -> bool {
        self.children(node).iter().any(|&c| {
            self.text(c)
                .is_some_and(|t| !t.chars().all(char::is_whitespace))
        })
    }

    /// All element nodes in depth-first (document) order, starting at the
    /// root. Allocates; prefer [`Document::iter_elements`] unless the
    /// ids must outlive a borrow of the document.
    pub fn elements(&self) -> Vec<NodeId> {
        self.iter_elements().collect()
    }

    /// All element nodes in depth-first (document) order, starting at
    /// the root, without materializing a `Vec`.
    pub fn iter_elements(&self) -> ElementsIter<'_> {
        ElementsIter {
            doc: self,
            stack: vec![self.root],
        }
    }

    /// Number of element nodes reachable from the root.
    pub fn element_count(&self) -> usize {
        self.iter_elements().count()
    }

    /// Maximum depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        fn go(d: &Document, n: NodeId) -> usize {
            1 + d.element_children(n).map(|c| go(d, c)).max().unwrap_or(0)
        }
        go(self, self.root)
    }
}

/// Depth-first pre-order traversal of a document's element nodes.
/// Created by [`Document::iter_elements`].
#[derive(Clone, Debug)]
pub struct ElementsIter<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for ElementsIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while let Some(n) = self.stack.pop() {
            if self.doc.is_element(n) {
                for &c in self.doc.children(n).iter().rev() {
                    self.stack.push(c);
                }
                return Some(n);
            }
        }
        None
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::serializer::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId) {
        let mut d = Document::new("document");
        let template = d.add_element(d.root(), "template");
        let content = d.add_element(d.root(), "content");
        let s1 = d.add_element(template, "section");
        d.set_attribute(s1, "title", "Intro");
        d.add_text(content, "hello");
        (d, template, s1)
    }

    #[test]
    fn structure_accessors() {
        let (d, template, s1) = sample();
        assert_eq!(d.name(d.root()), Some("document"));
        assert_eq!(d.parent(s1), Some(template));
        assert_eq!(d.parent(d.root()), None);
        assert_eq!(d.children(d.root()).len(), 2);
        assert_eq!(d.attribute(s1, "title"), Some("Intro"));
        assert_eq!(d.attribute(s1, "missing"), None);
    }

    #[test]
    fn anc_and_ch_str() {
        let (d, template, s1) = sample();
        assert_eq!(d.anc_str(s1), vec!["document", "template", "section"]);
        assert_eq!(d.ch_str(d.root()), vec!["template", "content"]);
        assert_eq!(d.ch_str(template), vec!["section"]);
        assert!(d.ch_str(s1).is_empty());
    }

    #[test]
    fn text_handling() {
        let (d, _, _) = sample();
        let content = d.children(d.root())[1];
        assert!(d.has_significant_text(content));
        assert!(!d.has_significant_text(d.root()));
        assert!(d.ch_str(content).is_empty());
    }

    #[test]
    fn set_attribute_replaces() {
        let (mut d, _, s1) = sample();
        d.set_attribute(s1, "title", "New");
        assert_eq!(d.attribute(s1, "title"), Some("New"));
        assert_eq!(d.attributes(s1).len(), 1);
    }

    #[test]
    fn elements_in_document_order() {
        let (d, _, _) = sample();
        let names: Vec<_> = d
            .elements()
            .into_iter()
            .map(|n| d.name(n).unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["document", "template", "section", "content"]);
    }

    #[test]
    fn name_ids_are_dense_and_shared() {
        let (d, template, s1) = sample();
        assert_eq!(d.name_id(d.root()), Some(0));
        assert_eq!(d.name_id(template), Some(1));
        assert_eq!(d.name_id(s1), Some(3)); // after "content"
        let text = d.children(d.children(d.root())[1])[0];
        assert_eq!(d.name_id(text), None);
        assert_eq!(
            d.distinct_names(),
            &["document", "template", "content", "section"]
        );
        // same name ⇒ same id
        let mut d2 = Document::new("a");
        let x = d2.add_element(d2.root(), "b");
        let y = d2.add_element(x, "b");
        assert_eq!(d2.name_id(x), d2.name_id(y));
    }

    #[test]
    fn local_name_strips_prefix() {
        let mut d = Document::new("xs:schema");
        assert_eq!(d.local_name(d.root()), Some("schema"));
        let e = d.add_element(d.root(), "element");
        assert_eq!(d.local_name(e), Some("element"));
    }

    #[test]
    fn depth_computation() {
        let (d, _, _) = sample();
        assert_eq!(d.depth(), 3);
        assert_eq!(Document::new("r").depth(), 1);
    }

    #[test]
    fn iter_elements_matches_elements() {
        let (d, _, _) = sample();
        let iterated: Vec<_> = d.iter_elements().collect();
        assert_eq!(iterated, d.elements());
        assert_eq!(d.element_count(), 4);
    }

    #[test]
    fn generation_counts_mutations() {
        let (mut d, _, s1) = sample();
        let g = d.generation();
        d.set_attribute(s1, "title", "New");
        assert_eq!(d.generation(), g + 1);
        d.add_element(d.root(), "extra");
        assert_eq!(d.generation(), g + 2);
    }

    #[test]
    fn edit_log_records_mutations() {
        let (mut d, template, s1) = sample();
        assert!(d.edit_log().is_none());
        d.enable_edit_log();
        let g0 = d.generation();
        d.set_attribute(s1, "title", "New");
        let t = d.insert_child(d.root(), 1, "middle");
        d.remove_child(template, s1);
        let edits: Vec<_> = d.edit_log().unwrap().since(g0).to_vec();
        assert_eq!(
            edits.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            vec![
                Edit::Dirty(s1),
                Edit::Dirty(d.root()),
                Edit::Dirty(template),
                Edit::Detached(s1),
            ]
        );
        // `since` slices by generation stamp.
        let (g_insert, _) = edits[1];
        assert_eq!(d.edit_log().unwrap().since(g_insert).len(), 2);
        d.clear_edit_log();
        assert!(d.edit_log().unwrap().is_empty());
        assert_eq!(d.name(t), Some("middle"));
    }

    #[test]
    fn insert_child_orders_siblings() {
        let mut d = Document::new("r");
        d.add_element(d.root(), "a");
        d.add_element(d.root(), "c");
        d.insert_child(d.root(), 1, "b");
        assert_eq!(d.ch_str(d.root()), vec!["a", "b", "c"]);
    }

    #[test]
    fn remove_child_detaches_subtree() {
        let (mut d, template, s1) = sample();
        d.remove_child(d.root(), template);
        assert_eq!(d.parent(template), None);
        assert_eq!(d.ch_str(d.root()), vec!["content"]);
        // Detached nodes stay addressable but unreachable.
        assert_eq!(d.name(s1), Some("section"));
        assert!(!d.elements().contains(&template));
        assert_eq!(d.element_count(), 2);
    }

    #[test]
    fn set_text_and_insert_text() {
        let (mut d, _, _) = sample();
        let content = d.children(d.root())[1];
        let text = d.children(content)[0];
        d.set_text(text, "  ");
        assert!(!d.has_significant_text(content));
        d.insert_text(content, 0, "front");
        assert_eq!(d.text(d.children(content)[0]), Some("front"));
    }

    #[test]
    fn replace_subtree_splices_copy() {
        let (mut d, template, s1) = sample();
        let mut src = Document::new("section");
        src.set_attribute(src.root(), "title", "Replacement");
        src.add_text(src.root(), "body");
        let fresh = d.replace_subtree(s1, &src, src.root());
        assert_eq!(d.parent(fresh), Some(template));
        assert_eq!(d.ch_str(template), vec!["section"]);
        assert_eq!(d.attribute(fresh, "title"), Some("Replacement"));
        assert_eq!(d.parent(s1), None);
        assert!(fresh.0 > template.0, "copies append after their parent");
    }

    #[test]
    fn replace_subtree_at_root() {
        let (mut d, _, _) = sample();
        d.enable_edit_log();
        let g0 = d.generation();
        let src = Document::new("fresh");
        let new_root = d.replace_subtree(d.root(), &src, src.root());
        assert_eq!(d.root(), new_root);
        assert_eq!(d.name(d.root()), Some("fresh"));
        assert!(d
            .edit_log()
            .unwrap()
            .since(g0)
            .iter()
            .any(|&(_, e)| e == Edit::RootReplaced));
    }
}
