//! A from-scratch XML 1.0 parser.
//!
//! Covers the language the paper's artifacts need — and then some: prolog,
//! processing instructions, comments, `DOCTYPE` with an internal subset
//! (handed to [`crate::dtd`] for declaration parsing; general entities
//! declared there are resolved in content), CDATA sections, character and
//! predefined entity references, attributes, and self-closing tags.
//! Errors carry line/column positions.

use std::collections::BTreeMap;

use crate::error::{ParseError, Position};
use crate::tree::{Document, NodeId};

/// The result of parsing an XML file.
#[derive(Clone, Debug)]
pub struct ParsedXml {
    /// The document tree.
    pub document: Document,
    /// The name declared in `<!DOCTYPE name …>`, if present.
    pub doctype_name: Option<String>,
    /// The raw internal DTD subset (between `[` and `]`), if present.
    pub internal_subset: Option<String>,
}

/// Parses an XML document from a string.
pub fn parse(input: &str) -> Result<ParsedXml, ParseError> {
    Parser::new(input).parse_document()
}

/// Parses an XML document, returning only the tree.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    parse(input).map(|p| p.document)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    /// General entities from the internal subset (beyond the predefined 5).
    entities: BTreeMap<String, String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            entities: BTreeMap::new(),
        }
    }

    fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.pos - self.line_start) as u32 + 1,
            offset: self.pos,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn parse_document(mut self) -> Result<ParsedXml, ParseError> {
        let mut doctype_name = None;
        let mut internal_subset = None;

        // Prolog: XML declaration, comments, PIs, DOCTYPE.
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                let (name, subset) = self.parse_doctype()?;
                doctype_name = Some(name);
                if let Some(s) = subset {
                    self.load_entities(&s)?;
                    internal_subset = Some(s);
                }
            } else {
                break;
            }
        }

        self.skip_ws();
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let document = self.parse_root_element()?;

        // Trailing misc.
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.peek().is_some() {
                return Err(self.err("unexpected content after root element"));
            } else {
                break;
            }
        }

        Ok(ParsedXml {
            document,
            doctype_name,
            internal_subset,
        })
    }

    /// Extracts general-entity declarations from the internal subset so
    /// that `&name;` references in content resolve.
    fn load_entities(&mut self, subset: &str) -> Result<(), ParseError> {
        if let Ok(dtd) = crate::dtd::parser::parse_dtd(subset) {
            for (name, value) in dtd.general_entities {
                self.entities.insert(name, value);
            }
        }
        Ok(())
    }

    fn parse_root_element(&mut self) -> Result<Document, ParseError> {
        // Parse the opening tag manually so we can create the Document.
        self.expect_str("<")?;
        let name = self.parse_name()?;
        let mut doc = Document::new(&name);
        let root = doc.root();
        self.parse_attributes_into(&mut doc, root)?;
        self.skip_ws();
        if self.starts_with("/>") {
            self.expect_str("/>")?;
            return Ok(doc);
        }
        self.expect_str(">")?;

        // Iterative content parsing (an explicit open-element stack keeps
        // arbitrarily deep documents from overflowing the call stack).
        let mut stack: Vec<(NodeId, String)> = vec![(root, name)];
        let mut text = String::new();
        while let Some((node, node_name)) = stack.last().cloned() {
            match self.peek() {
                None => {
                    return Err(
                        self.err(format!("unexpected end of input in <{node_name}>"))
                    )
                }
                Some(b'<') => {
                    if self.starts_with("</") {
                        flush_text(&mut doc, node, &mut text);
                        self.expect_str("</")?;
                        let close = self.parse_name()?;
                        if close != node_name {
                            return Err(self.err(format!(
                                "mismatched close tag: expected </{node_name}>, found </{close}>"
                            )));
                        }
                        self.skip_ws();
                        self.expect_str(">")?;
                        stack.pop();
                    } else if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        self.parse_cdata(&mut text)?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else {
                        flush_text(&mut doc, node, &mut text);
                        self.expect_str("<")?;
                        let child_name = self.parse_name()?;
                        let child = doc.add_element(node, &child_name);
                        self.parse_attributes_into(&mut doc, child)?;
                        self.skip_ws();
                        if self.starts_with("/>") {
                            self.expect_str("/>")?;
                        } else {
                            self.expect_str(">")?;
                            stack.push((child, child_name));
                        }
                    }
                }
                Some(b'&') => {
                    let resolved = self.parse_entity_ref()?;
                    text.push_str(&resolved);
                }
                Some(_) => {
                    let c = self.bump().expect("peeked");
                    text.push(c as char);
                    if c >= 0x80 {
                        // Re-decode multibyte sequences properly.
                        text.pop();
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.input.len() && (self.input[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        let st = std::str::from_utf8(&self.input[start..end])
                            .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                        text.push_str(st);
                        while self.pos < end {
                            self.bump();
                        }
                    }
                }
            }
        }
        Ok(doc)
    }

    fn parse_attributes_into(
        &mut self,
        doc: &mut Document,
        node: NodeId,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(()),
                _ => {}
            }
            let name = self.parse_name()?;
            self.skip_ws();
            self.expect_str("=")?;
            self.skip_ws();
            let value = self.parse_attr_value()?;
            if doc.attribute(node, &name).is_some() {
                return Err(self.err(format!("duplicate attribute {name:?}")));
            }
            doc.set_attribute(node, &name, &value);
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    let resolved = self.parse_entity_ref()?;
                    value.push_str(&resolved);
                }
                Some(_) => {
                    let start = self.pos;
                    self.bump();
                    let mut end = self.pos;
                    while end < self.input.len() && (self.input[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.input[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    value.push_str(s);
                    while self.pos < end {
                        self.bump();
                    }
                }
            }
        }
    }

    fn parse_entity_ref(&mut self) -> Result<String, ParseError> {
        self.expect_str("&")?;
        if self.peek() == Some(b'#') {
            self.bump();
            let (radix, digits_ok): (u32, fn(u8) -> bool) = if self.peek() == Some(b'x') {
                self.bump();
                (16, |c: u8| c.is_ascii_hexdigit())
            } else {
                (10, |c: u8| c.is_ascii_digit())
            };
            let start = self.pos;
            while matches!(self.peek(), Some(c) if digits_ok(c)) {
                self.bump();
            }
            if self.pos == start {
                return Err(self.err("empty character reference"));
            }
            let digits = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
            self.expect_str(";")?;
            let code = u32::from_str_radix(digits, radix)
                .map_err(|_| self.err("character reference out of range"))?;
            let ch =
                char::from_u32(code).ok_or_else(|| self.err("invalid character reference"))?;
            return Ok(ch.to_string());
        }
        let name = self.parse_name()?;
        self.expect_str(";")?;
        match name.as_str() {
            "amp" => Ok("&".to_owned()),
            "lt" => Ok("<".to_owned()),
            "gt" => Ok(">".to_owned()),
            "apos" => Ok("'".to_owned()),
            "quot" => Ok("\"".to_owned()),
            other => self
                .entities
                .get(other)
                .cloned()
                .ok_or_else(|| self.err(format!("undeclared entity &{other};"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_owned())
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect_str("<!--")?;
        loop {
            if self.starts_with("-->") {
                return self.expect_str("-->");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect_str("<?")?;
        loop {
            if self.starts_with("?>") {
                return self.expect_str("?>");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
    }

    fn parse_cdata(&mut self, text: &mut String) -> Result<(), ParseError> {
        self.expect_str("<![CDATA[")?;
        let start = self.pos;
        loop {
            if self.starts_with("]]>") {
                let content = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                text.push_str(content);
                return self.expect_str("]]>");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated CDATA section"));
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<(String, Option<String>), ParseError> {
        self.expect_str("<!DOCTYPE")?;
        self.skip_ws();
        let name = self.parse_name()?;
        self.skip_ws();
        // Optional external ID (SYSTEM/PUBLIC) — recorded but not fetched.
        if self.starts_with("SYSTEM") {
            self.expect_str("SYSTEM")?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
        } else if self.starts_with("PUBLIC") {
            self.expect_str("PUBLIC")?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
        }
        let mut subset = None;
        if self.peek() == Some(b'[') {
            self.bump();
            let start = self.pos;
            let mut depth = 0usize;
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated DOCTYPE internal subset")),
                    Some(b'<') => {
                        depth += 1;
                        self.bump();
                    }
                    Some(b'>') => {
                        depth = depth.saturating_sub(1);
                        self.bump();
                    }
                    Some(b']') if depth == 0 => {
                        subset = Some(
                            std::str::from_utf8(&self.input[start..self.pos])
                                .map_err(|_| self.err("invalid UTF-8 in DTD"))?
                                .to_owned(),
                        );
                        self.bump();
                        break;
                    }
                    Some(_) => {
                        self.bump();
                    }
                }
            }
            self.skip_ws();
        }
        self.expect_str(">")?;
        Ok((name, subset))
    }
}

fn flush_text(doc: &mut Document, node: NodeId, text: &mut String) {
    if !text.is_empty() {
        doc.add_text(node, text);
        text.clear();
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || matches!(c, b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let d = parse_document("<root/>").unwrap();
        assert_eq!(d.name(d.root()), Some("root"));
        assert!(d.children(d.root()).is_empty());
    }

    #[test]
    fn parses_nested_elements_and_attributes() {
        let d = parse_document(r#"<a x="1"><b y='2'/><c>text</c></a>"#).unwrap();
        assert_eq!(d.attribute(d.root(), "x"), Some("1"));
        assert_eq!(d.ch_str(d.root()), vec!["b", "c"]);
        let c = d.children(d.root())[1];
        assert_eq!(d.text(d.children(c)[0]), Some("text"));
    }

    #[test]
    fn resolves_predefined_entities() {
        let d = parse_document("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>").unwrap();
        let t = d.children(d.root())[0];
        assert_eq!(d.text(t), Some("<&>\"'AB"));
    }

    #[test]
    fn entities_in_attributes() {
        let d = parse_document(r#"<a t="a&amp;b&#33;"/>"#).unwrap();
        assert_eq!(d.attribute(d.root(), "t"), Some("a&b!"));
    }

    #[test]
    fn parses_cdata() {
        let d = parse_document("<a><![CDATA[<not-a-tag> & stuff]]></a>").unwrap();
        let t = d.children(d.root())[0];
        assert_eq!(d.text(t), Some("<not-a-tag> & stuff"));
    }

    #[test]
    fn skips_comments_and_pis() {
        let d = parse_document("<?xml version=\"1.0\"?><!-- hi --><a><?pi data?><!--x--><b/></a>")
            .unwrap();
        assert_eq!(d.ch_str(d.root()), vec!["b"]);
    }

    #[test]
    fn doctype_with_internal_subset_and_entities() {
        let input = r#"<!DOCTYPE a [
            <!ELEMENT a (#PCDATA)>
            <!ENTITY greeting "hello world">
        ]>
        <a>&greeting;!</a>"#;
        let p = parse(input).unwrap();
        assert_eq!(p.doctype_name.as_deref(), Some("a"));
        assert!(p.internal_subset.is_some());
        let d = &p.document;
        assert_eq!(d.text(d.children(d.root())[0]), Some("hello world!"));
    }

    #[test]
    fn mismatched_tags_error_with_position() {
        let e = parse_document("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(e.position.line, 2);
        assert!(e.message.contains("mismatched"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_document("").is_err());
        assert!(parse_document("plain text").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></a><b/>").is_err());
        assert!(parse_document("<a x=1/>").is_err());
        assert!(parse_document("<a>&undefined;</a>").is_err());
        assert!(parse_document("<a x=\"1\" x=\"2\"/>").is_err());
    }

    #[test]
    fn whitespace_only_text_is_kept_as_nodes() {
        let d = parse_document("<a>\n  <b/>\n</a>").unwrap();
        // text, element, text
        assert_eq!(d.children(d.root()).len(), 3);
        assert!(!d.has_significant_text(d.root()));
    }

    #[test]
    fn unicode_content() {
        let d = parse_document("<a title=\"naïve\">héllo — wörld</a>").unwrap();
        let t = d.children(d.root())[0];
        assert_eq!(d.text(t), Some("héllo — wörld"));
    }

    #[test]
    fn doctype_system_id() {
        let p = parse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>").unwrap();
        assert_eq!(p.doctype_name.as_deref(), Some("a"));
        assert!(p.internal_subset.is_none());
    }
}
