//! The tree-building XML parser: a fold over the streaming reader.
//!
//! All lexing, entity expansion, and well-formedness checking lives in
//! [`crate::stream`]; this module only materializes the event sequence as
//! a [`Document`]. Streaming consumers (e.g. the BonXai streaming
//! validator) that walk the same events therefore see *exactly* the trees
//! this parser builds — node ids included, since nodes are allocated in
//! event order — which is what makes streamed and tree-based validation
//! reports byte-identical.
//!
//! Covers the language the paper's artifacts need — and then some: prolog,
//! processing instructions, comments, `DOCTYPE` with an internal subset
//! (handed to [`crate::dtd`] for declaration parsing; general entities
//! declared there are resolved in content, recursively), CDATA sections,
//! character and predefined entity references, attributes, and
//! self-closing tags. Errors carry line/column positions.

use crate::error::ParseError;
use crate::stream::{ByteSrc, XmlReader, XmlToken};
use crate::tree::{Document, NodeId};

/// The result of parsing an XML file.
#[derive(Clone, Debug)]
pub struct ParsedXml {
    /// The document tree.
    pub document: Document,
    /// The name declared in `<!DOCTYPE name …>`, if present.
    pub doctype_name: Option<String>,
    /// The raw internal DTD subset (between `[` and `]`), if present.
    pub internal_subset: Option<String>,
}

/// Parses an XML document from a string.
pub fn parse(input: &str) -> Result<ParsedXml, ParseError> {
    parse_from_reader(XmlReader::from_str(input))
}

/// Folds an already-constructed reader into a parsed document.
///
/// This is the tree-building fold itself; [`parse`] is just this applied
/// to [`XmlReader::from_str`]. Exposed so callers that need a non-default
/// reader — a forced lexer engine ([`XmlReader::set_engine`]), an
/// incremental [`io::Read`](std::io::Read) source — can still reuse the
/// exact same materialization. The stack is pre-sized to a typical
/// document depth so steady-state parsing never reallocates it.
pub fn parse_from_reader<S: ByteSrc>(mut reader: XmlReader<S>) -> Result<ParsedXml, ParseError> {
    let mut doctype_name = None;
    let mut internal_subset = None;
    let mut document: Option<Document> = None;
    let mut stack: Vec<NodeId> = Vec::with_capacity(16);
    loop {
        match reader.next_event()? {
            XmlToken::Doctype {
                name,
                internal_subset: subset,
            } => {
                doctype_name = Some(name.to_owned());
                if let Some(s) = subset {
                    internal_subset = Some(s.to_owned());
                }
            }
            XmlToken::StartElement {
                name,
                name_id,
                attributes,
                ..
            } => match &mut document {
                None => {
                    let mut doc = Document::new(name);
                    let root = doc.root();
                    for a in attributes.iter() {
                        doc.set_attribute(root, a.name, a.value);
                    }
                    stack.push(root);
                    document = Some(doc);
                }
                Some(doc) => {
                    let parent = *stack.last().expect("start events are nested");
                    // The reader's dense first-occurrence ids coincide
                    // with the document's name interner by construction,
                    // so the hinted path skips hashing entirely.
                    let node = doc.add_element_hinted(parent, name, name_id.index());
                    for a in attributes.iter() {
                        doc.set_attribute(node, a.name, a.value);
                    }
                    stack.push(node);
                }
            },
            XmlToken::EndElement { .. } => {
                stack.pop();
            }
            XmlToken::Text { text, .. } => {
                let doc = document.as_mut().expect("text only occurs inside the root");
                let parent = *stack.last().expect("text only occurs inside the root");
                doc.add_text(parent, text);
            }
            XmlToken::EndDocument => break,
        }
    }
    Ok(ParsedXml {
        document: document.expect("EndDocument implies a root element"),
        doctype_name,
        internal_subset,
    })
}

/// Parses an XML document, returning only the tree.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    parse(input).map(|p| p.document)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let d = parse_document("<root/>").unwrap();
        assert_eq!(d.name(d.root()), Some("root"));
        assert!(d.children(d.root()).is_empty());
    }

    #[test]
    fn parses_nested_elements_and_attributes() {
        let d = parse_document(r#"<a x="1"><b y='2'/><c>text</c></a>"#).unwrap();
        assert_eq!(d.attribute(d.root(), "x"), Some("1"));
        assert_eq!(d.ch_str(d.root()), vec!["b", "c"]);
        let c = d.children(d.root())[1];
        assert_eq!(d.text(d.children(c)[0]), Some("text"));
    }

    #[test]
    fn resolves_predefined_entities() {
        let d = parse_document("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>").unwrap();
        let t = d.children(d.root())[0];
        assert_eq!(d.text(t), Some("<&>\"'AB"));
    }

    #[test]
    fn entities_in_attributes() {
        let d = parse_document(r#"<a t="a&amp;b&#33;"/>"#).unwrap();
        assert_eq!(d.attribute(d.root(), "t"), Some("a&b!"));
    }

    #[test]
    fn parses_cdata() {
        let d = parse_document("<a><![CDATA[<not-a-tag> & stuff]]></a>").unwrap();
        let t = d.children(d.root())[0];
        assert_eq!(d.text(t), Some("<not-a-tag> & stuff"));
    }

    #[test]
    fn skips_comments_and_pis() {
        let d = parse_document("<?xml version=\"1.0\"?><!-- hi --><a><?pi data?><!--x--><b/></a>")
            .unwrap();
        assert_eq!(d.ch_str(d.root()), vec!["b"]);
    }

    #[test]
    fn doctype_with_internal_subset_and_entities() {
        let input = r#"<!DOCTYPE a [
            <!ELEMENT a (#PCDATA)>
            <!ENTITY greeting "hello world">
        ]>
        <a>&greeting;!</a>"#;
        let p = parse(input).unwrap();
        assert_eq!(p.doctype_name.as_deref(), Some("a"));
        assert!(p.internal_subset.is_some());
        let d = &p.document;
        assert_eq!(d.text(d.children(d.root())[0]), Some("hello world!"));
    }

    #[test]
    fn nested_entity_references_expand_recursively() {
        // Regression: the seed parser returned replacement text verbatim,
        // so &outer; kept the literal string "&inner;".
        let input = r#"<!DOCTYPE a [
            <!ENTITY inner "deep">
            <!ENTITY outer "so &inner; here">
            <!ENTITY outest "&outer;&outer;">
        ]><a>&outest;</a>"#;
        let d = parse_document(input).unwrap();
        assert_eq!(
            d.text(d.children(d.root())[0]),
            Some("so deep hereso deep here")
        );
    }

    #[test]
    fn recursive_and_oversized_entities_are_parse_errors() {
        let recursive = r#"<!DOCTYPE a [<!ENTITY x "&x;">]><a>&x;</a>"#;
        let e = parse_document(recursive).unwrap_err();
        assert!(e.message.contains("recursive"), "{e}");

        let mut subset = String::from("<!ENTITY l0 \"aaaaaaaaaaaaaaaaaaaa\">");
        for i in 1..10 {
            let p = i - 1;
            let tenfold = format!("&l{p};").repeat(10);
            subset.push_str(&format!("<!ENTITY l{i} \"{tenfold}\">"));
        }
        let bomb = format!("<!DOCTYPE a [{subset}]><a>&l9;</a>");
        let e = parse_document(&bomb).unwrap_err();
        assert!(e.message.contains("expands to more than"), "{e}");
    }

    #[test]
    fn malformed_internal_subset_surfaces_the_dtd_error() {
        // Regression: the seed parser swallowed DTD errors, silently
        // dropping all entity declarations and misreporting `&ok;` below
        // as an undeclared entity.
        let input = "<!DOCTYPE a [\n<!ENTITY ok \"fine\">\n<!ENTITY broken \"oops>\n]><a>&ok;</a>";
        let e = parse_document(input).unwrap_err();
        assert!(e.message.contains("in DTD internal subset"), "{e}");
        assert!(
            e.position.line >= 2,
            "position {:?} must be inside the subset",
            e.position
        );
    }

    #[test]
    fn forbidden_character_references_rejected() {
        // Regression: the seed parser accepted any char::from_u32 value,
        // including NUL and other XML-1.0-forbidden control characters.
        for bad in ["<a>&#0;</a>", "<a>&#x1F;</a>", "<a t=\"&#xFFFF;\"/>"] {
            let e = parse_document(bad).unwrap_err();
            assert!(e.message.contains("XML character"), "{bad}: {e}");
        }
        let d = parse_document("<a>&#9;&#xD;&#x10FFFF;</a>").unwrap();
        assert_eq!(d.text(d.children(d.root())[0]), Some("\t\r\u{10FFFF}"));
    }

    #[test]
    fn mismatched_tags_error_with_position() {
        let e = parse_document("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(e.position.line, 2);
        assert!(e.message.contains("mismatched"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_document("").is_err());
        assert!(parse_document("plain text").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></a><b/>").is_err());
        assert!(parse_document("<a x=1/>").is_err());
        assert!(parse_document("<a>&undefined;</a>").is_err());
        assert!(parse_document("<a x=\"1\" x=\"2\"/>").is_err());
    }

    #[test]
    fn whitespace_only_text_is_kept_as_nodes() {
        let d = parse_document("<a>\n  <b/>\n</a>").unwrap();
        // text, element, text
        assert_eq!(d.children(d.root()).len(), 3);
        assert!(!d.has_significant_text(d.root()));
    }

    #[test]
    fn unicode_content() {
        let d = parse_document("<a title=\"naïve\">héllo — wörld</a>").unwrap();
        let t = d.children(d.root())[0];
        assert_eq!(d.text(t), Some("héllo — wörld"));
    }

    #[test]
    fn doctype_system_id() {
        let p = parse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>").unwrap();
        assert_eq!(p.doctype_name.as_deref(), Some("a"));
        assert!(p.internal_subset.is_none());
    }
}
