//! Stage 1 of the two-stage lexer: the SIMD structural-index pass.
//!
//! [`classify`] scans a chunk of input bytes **once** and appends to a
//! compact index every *structural* position — the six byte values the
//! token layer dispatches on (`<`, `>`, `"`, `'`, `&`, `]`) — plus every
//! newline (for line/column accounting) and whether the chunk was pure
//! ASCII (feeding the batched UTF-8 watermark in `stream`). Stage 2
//! ([`crate::stream::XmlReader`]) then walks the index instead of
//! re-scanning bytes: a text run is "the next `<`/`&` mark", a tag
//! extent is "the next unquoted `>` mark", and so on.
//!
//! Three kernels produce identical output:
//!
//! * [`Engine::Sse2`] — 16-byte `_mm_cmpeq_epi8`/`_mm_movemask_epi8`
//!   lanes on x86-64 (SSE2 is baseline for the target, but dispatch
//!   still verifies it at runtime);
//! * [`Engine::Neon`] — 16-byte `vceqq_u8` lanes on aarch64, with the
//!   `vshrn_n_u16` nibble-mask trick standing in for `movemask`;
//! * [`Engine::Scalar`] — a table-driven byte loop. Selecting this
//!   engine on a reader disables the structural index entirely and the
//!   token layer falls back to the direct SWAR scan path, so the scalar
//!   fallback exercises genuinely different code (and pins the SIMD
//!   path via the differential tests).
//!
//! Dispatch is runtime, per reader: [`Engine::detect`] picks the widest
//! available kernel unless the `BONXAI_NO_SIMD` environment variable
//! forces scalar; [`crate::stream::XmlReader::set_engine`] overrides it
//! programmatically.

/// Which structural-index kernel a reader uses. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// Explicit SSE2 intrinsics (x86-64).
    Sse2,
    /// Explicit NEON intrinsics (aarch64).
    Neon,
    /// No structural index: the direct SWAR scan path in
    /// [`crate::stream`].
    Scalar,
}

impl Engine {
    /// The widest kernel available on this machine, unless the
    /// `BONXAI_NO_SIMD` environment variable (set to anything but `0`
    /// or empty) forces [`Engine::Scalar`]. The answer is computed once
    /// per process.
    pub fn detect() -> Engine {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<Engine> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            let forced_scalar = std::env::var("BONXAI_NO_SIMD")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if forced_scalar {
                return Engine::Scalar;
            }
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("sse2") {
                    return Engine::Sse2;
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                return Engine::Neon;
            }
            #[allow(unreachable_code)]
            Engine::Scalar
        })
    }

    /// Whether this kernel can run on the current machine.
    pub fn is_available(self) -> bool {
        match self {
            Engine::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Engine::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(not(target_arch = "x86_64"))]
            Engine::Sse2 => false,
            Engine::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Stable lowercase name, as reported in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Sse2 => "sse2",
            Engine::Neon => "neon",
            Engine::Scalar => "scalar",
        }
    }
}

// ------------------------------------------------------------- classes

/// Class codes for the six structural bytes, packed into the low 3 bits
/// of a mark word (`mark = (abs_position << 3) | class`).
pub(crate) const CLASS_LT: u8 = 0; // `<`
/// `>`
pub(crate) const CLASS_GT: u8 = 1;
/// `"`
pub(crate) const CLASS_DQ: u8 = 2;
/// `'`
pub(crate) const CLASS_SQ: u8 = 3;
/// `&`
pub(crate) const CLASS_AMP: u8 = 4;
/// `]`
pub(crate) const CLASS_RB: u8 = 5;

/// Bit masks over the classes, for "next mark of any of these kinds"
/// queries.
pub(crate) const MASK_LT: u8 = 1 << CLASS_LT;
pub(crate) const MASK_GT: u8 = 1 << CLASS_GT;
pub(crate) const MASK_DQ: u8 = 1 << CLASS_DQ;
pub(crate) const MASK_SQ: u8 = 1 << CLASS_SQ;
pub(crate) const MASK_AMP: u8 = 1 << CLASS_AMP;

const NONE: u8 = 0xFF;

/// Byte value → structural class, or [`NONE`].
static CLASS_OF: [u8; 256] = {
    let mut t = [NONE; 256];
    t[b'<' as usize] = CLASS_LT;
    t[b'>' as usize] = CLASS_GT;
    t[b'"' as usize] = CLASS_DQ;
    t[b'\'' as usize] = CLASS_SQ;
    t[b'&' as usize] = CLASS_AMP;
    t[b']' as usize] = CLASS_RB;
    t
};

/// The class mask bit for `b`, if `b` is one of the six structural
/// bytes. Lets the token layer route an arbitrary delimiter search
/// through the index when (and only when) the index covers it.
#[inline]
pub(crate) fn struct_mask(b: u8) -> Option<u8> {
    let c = CLASS_OF[b as usize];
    (c != NONE).then(|| 1 << c)
}

// ------------------------------------------------------------- kernels

/// Scans `chunk`, whose first byte sits at absolute offset `base`,
/// appending `(abs << 3) | class` words for every structural byte to
/// `marks` and absolute newline offsets to `nls`. Returns whether every
/// byte in the chunk was ASCII.
///
/// All engines produce identical output (pinned by the tests below);
/// they differ only in how they find the candidate bytes.
pub(crate) fn classify(
    engine: Engine,
    chunk: &[u8],
    base: usize,
    marks: &mut Vec<u64>,
    nls: &mut Vec<u64>,
) -> bool {
    match engine {
        #[cfg(target_arch = "x86_64")]
        Engine::Sse2 => sse2::classify(chunk, base, marks, nls),
        #[cfg(target_arch = "aarch64")]
        Engine::Neon => neon::classify(chunk, base, marks, nls),
        _ => classify_scalar(chunk, base, marks, nls),
    }
}

/// The portable reference kernel: a table lookup per byte.
fn classify_scalar(chunk: &[u8], base: usize, marks: &mut Vec<u64>, nls: &mut Vec<u64>) -> bool {
    let mut all_ascii = true;
    for (i, &b) in chunk.iter().enumerate() {
        let class = CLASS_OF[b as usize];
        if class != NONE {
            marks.push((((base + i) as u64) << 3) | u64::from(class));
        } else if b == b'\n' {
            nls.push((base + i) as u64);
        }
        all_ascii &= b < 0x80;
    }
    all_ascii
}

/// Length of the longest prefix of `bytes` consisting entirely of ASCII
/// whitespace (`0x09`–`0x0D`, `0x20`) — equivalently, the offset of the
/// first byte outside that set, or `bytes.len()`. The fused drive loop
/// uses this to answer "any non-whitespace text?" for element-only
/// content without a per-`char` scan; the byte at the returned offset
/// (if any) still needs a `char`-level look when it's ≥ 0x80, since
/// multi-byte sequences can decode to Unicode whitespace.
#[inline]
pub(crate) fn first_non_ascii_ws(bytes: &[u8]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            return sse2::first_non_ascii_ws(bytes);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return neon::first_non_ascii_ws(bytes);
    }
    #[allow(unreachable_code)]
    first_non_ascii_ws_scalar(bytes)
}

/// Portable reference for [`first_non_ascii_ws`].
fn first_non_ascii_ws_scalar(bytes: &[u8]) -> usize {
    bytes
        .iter()
        .position(|&b| !matches!(b, 0x09..=0x0D | 0x20))
        .unwrap_or(bytes.len())
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8,
    };

    #[allow(unsafe_code)]
    pub(super) fn classify(
        chunk: &[u8],
        base: usize,
        marks: &mut Vec<u64>,
        nls: &mut Vec<u64>,
    ) -> bool {
        // SAFETY: `Engine::detect`/`is_available` gate this kernel on a
        // successful `is_x86_feature_detected!("sse2")` (always true on
        // x86-64, which has SSE2 in its baseline).
        unsafe { classify_impl(chunk, base, marks, nls) }
    }

    #[allow(unsafe_code)]
    #[target_feature(enable = "sse2")]
    unsafe fn classify_impl(
        chunk: &[u8],
        base: usize,
        marks: &mut Vec<u64>,
        nls: &mut Vec<u64>,
    ) -> bool {
        let mut non_ascii = 0i32;
        let mut i = 0;
        while i + 16 <= chunk.len() {
            // SAFETY: `i + 16 <= chunk.len()`; unaligned load is fine.
            let v = unsafe { _mm_loadu_si128(chunk.as_ptr().add(i) as *const __m128i) };
            let eq = |c: u8| _mm_cmpeq_epi8(v, _mm_set1_epi8(c as i8));
            let structural = _mm_or_si128(
                _mm_or_si128(
                    _mm_or_si128(eq(b'<'), eq(b'>')),
                    _mm_or_si128(eq(b'"'), eq(b'\'')),
                ),
                _mm_or_si128(eq(b'&'), eq(b']')),
            );
            // One u16 lane mask per comparison; bit k = byte k matched.
            let mut sm = _mm_movemask_epi8(structural) as u32;
            while sm != 0 {
                let k = sm.trailing_zeros() as usize;
                let b = chunk[i + k];
                let class = super::CLASS_OF[b as usize];
                marks.push((((base + i + k) as u64) << 3) | u64::from(class));
                sm &= sm - 1;
            }
            let mut nm = _mm_movemask_epi8(eq(b'\n')) as u32;
            while nm != 0 {
                let k = nm.trailing_zeros() as usize;
                nls.push((base + i + k) as u64);
                nm &= nm - 1;
            }
            // High bit set ⇔ byte ≥ 0x80: movemask of the raw lanes.
            non_ascii |= _mm_movemask_epi8(v);
            i += 16;
        }
        super::classify_scalar(&chunk[i..], base + i, marks, nls) && non_ascii == 0
    }

    #[allow(unsafe_code)]
    pub(super) fn first_non_ascii_ws(bytes: &[u8]) -> usize {
        // SAFETY: the caller checked `is_x86_feature_detected!("sse2")`
        // (always true on x86-64, which has SSE2 in its baseline).
        unsafe { first_non_ascii_ws_impl(bytes) }
    }

    #[allow(unsafe_code)]
    #[target_feature(enable = "sse2")]
    unsafe fn first_non_ascii_ws_impl(bytes: &[u8]) -> usize {
        use std::arch::x86_64::{_mm_min_epu8, _mm_sub_epi8};
        let mut i = 0;
        while i + 16 <= bytes.len() {
            // SAFETY: `i + 16 <= bytes.len()`; unaligned load is fine.
            let v = unsafe { _mm_loadu_si128(bytes.as_ptr().add(i) as *const __m128i) };
            // Unsigned range test: b - 9 <= 4 ⇔ b ∈ 0x09..=0x0D (the
            // subtraction wraps, so anything below 9 lands high).
            let sub = _mm_sub_epi8(v, _mm_set1_epi8(9));
            let in_range = _mm_cmpeq_epi8(_mm_min_epu8(sub, _mm_set1_epi8(4)), sub);
            let ws = _mm_or_si128(in_range, _mm_cmpeq_epi8(v, _mm_set1_epi8(b' ' as i8)));
            let non_ws = !(_mm_movemask_epi8(ws) as u32) & 0xFFFF;
            if non_ws != 0 {
                return i + non_ws.trailing_zeros() as usize;
            }
            i += 16;
        }
        i + super::first_non_ascii_ws_scalar(&bytes[i..])
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        uint8x16_t, vceqq_u8, vdupq_n_u8, vget_lane_u64, vld1q_u8, vmaxvq_u8, vorrq_u8,
        vreinterpret_u64_u8, vreinterpretq_u16_u8, vshrn_n_u16,
    };

    /// NEON has no `movemask`; the standard substitute narrows each
    /// 16-bit lane pair to its high nibble, yielding a u64 where nibble
    /// `k` is `0xF` iff byte `k` matched.
    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn nibble_mask(v: uint8x16_t) -> u64 {
        vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(vreinterpretq_u16_u8(
            v,
        ))))
    }

    #[allow(unsafe_code)]
    pub(super) fn classify(
        chunk: &[u8],
        base: usize,
        marks: &mut Vec<u64>,
        nls: &mut Vec<u64>,
    ) -> bool {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { classify_impl(chunk, base, marks, nls) }
    }

    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn classify_impl(
        chunk: &[u8],
        base: usize,
        marks: &mut Vec<u64>,
        nls: &mut Vec<u64>,
    ) -> bool {
        let mut all_ascii = true;
        let mut i = 0;
        while i + 16 <= chunk.len() {
            // SAFETY: `i + 16 <= chunk.len()`.
            let v = unsafe { vld1q_u8(chunk.as_ptr().add(i)) };
            let eq = |c: u8| vceqq_u8(v, vdupq_n_u8(c));
            let structural = vorrq_u8(
                vorrq_u8(vorrq_u8(eq(b'<'), eq(b'>')), vorrq_u8(eq(b'"'), eq(b'\''))),
                vorrq_u8(eq(b'&'), eq(b']')),
            );
            let mut sm = nibble_mask(structural);
            while sm != 0 {
                let k = (sm.trailing_zeros() >> 2) as usize;
                let b = chunk[i + k];
                let class = super::CLASS_OF[b as usize];
                marks.push((((base + i + k) as u64) << 3) | u64::from(class));
                sm &= !(0xFu64 << (4 * k));
            }
            let mut nm = nibble_mask(eq(b'\n'));
            while nm != 0 {
                let k = (nm.trailing_zeros() >> 2) as usize;
                nls.push((base + i + k) as u64);
                nm &= !(0xFu64 << (4 * k));
            }
            all_ascii &= vmaxvq_u8(v) < 0x80;
            i += 16;
        }
        super::classify_scalar(&chunk[i..], base + i, marks, nls) && all_ascii
    }

    #[allow(unsafe_code)]
    pub(super) fn first_non_ascii_ws(bytes: &[u8]) -> usize {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { first_non_ascii_ws_impl(bytes) }
    }

    #[allow(unsafe_code)]
    #[target_feature(enable = "neon")]
    unsafe fn first_non_ascii_ws_impl(bytes: &[u8]) -> usize {
        use std::arch::aarch64::{vcleq_u8, vsubq_u8};
        let mut i = 0;
        while i + 16 <= bytes.len() {
            // SAFETY: `i + 16 <= bytes.len()`.
            let v = unsafe { vld1q_u8(bytes.as_ptr().add(i)) };
            // Unsigned range test: b - 9 <= 4 ⇔ b ∈ 0x09..=0x0D.
            let in_range = vcleq_u8(vsubq_u8(v, vdupq_n_u8(9)), vdupq_n_u8(4));
            let ws = vorrq_u8(in_range, vceqq_u8(v, vdupq_n_u8(b' ')));
            let mask = nibble_mask(ws);
            if mask != u64::MAX {
                return i + ((!mask).trailing_zeros() >> 2) as usize;
            }
            i += 16;
        }
        i + super::first_non_ascii_ws_scalar(&bytes[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(engine: Engine, chunk: &[u8], base: usize) -> (Vec<u64>, Vec<u64>, bool) {
        let mut marks = Vec::new();
        let mut nls = Vec::new();
        let ascii = classify(engine, chunk, base, &mut marks, &mut nls);
        (marks, nls, ascii)
    }

    #[test]
    fn scalar_kernel_marks_exactly_the_structural_bytes() {
        let input = b"<a x=\"v'\">text & more]\n</a>";
        let (marks, nls, ascii) = run(Engine::Scalar, input, 100);
        let expect: Vec<u64> = input
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| {
                let c = match b {
                    b'<' => CLASS_LT,
                    b'>' => CLASS_GT,
                    b'"' => CLASS_DQ,
                    b'\'' => CLASS_SQ,
                    b'&' => CLASS_AMP,
                    b']' => CLASS_RB,
                    _ => return None,
                };
                Some((((100 + i) as u64) << 3) | u64::from(c))
            })
            .collect();
        assert_eq!(marks, expect);
        assert_eq!(nls, vec![100 + 22]);
        assert!(ascii);
    }

    #[test]
    fn detected_kernel_matches_scalar_on_varied_inputs() {
        let engine = Engine::detect();
        // A deterministic pseudo-random byte soup heavy in structural
        // bytes, newlines, and non-ASCII, at every alignment and length
        // straddling the 16-byte lane boundary.
        let mut bytes = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) as u8;
            bytes.push(match b % 11 {
                0 => b'<',
                1 => b'>',
                2 => b'"',
                3 => b'\'',
                4 => b'&',
                5 => b']',
                6 => b'\n',
                7 => 0xC3, // non-ASCII
                _ => b,
            });
        }
        for start in [0usize, 1, 7, 15, 16, 17] {
            for len in [0usize, 1, 15, 16, 17, 31, 33, 100, 1000] {
                let end = (start + len).min(bytes.len());
                let chunk = &bytes[start..end];
                assert_eq!(
                    run(engine, chunk, start),
                    run(Engine::Scalar, chunk, start),
                    "engine {} diverges at start={start} len={len}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn ascii_flag_reflects_high_bytes_anywhere_in_the_chunk() {
        let engine = Engine::detect();
        let mut chunk = vec![b'a'; 40];
        assert!(run(engine, &chunk, 0).2);
        for pos in [0usize, 15, 16, 32, 39] {
            chunk[pos] = 0xE2;
            assert!(!run(engine, &chunk, 0).2, "high byte at {pos} missed");
            chunk[pos] = b'a';
        }
    }

    #[test]
    fn first_non_ascii_ws_matches_naive_scan() {
        // Byte soup heavy in whitespace, with the boundary values of
        // the 0x09..=0x0D range, 0x20's neighbors, and high bytes that
        // decode to Unicode whitespace (0x85, 0xA0) — which must NOT
        // count as ASCII whitespace here.
        let mut bytes = Vec::new();
        let mut x: u64 = 0x243f6a8885a308d3;
        for _ in 0..2048 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) as u8;
            bytes.push(match b % 13 {
                0 => 0x08,
                1 => 0x09,
                2 => 0x0A,
                3 => 0x0D,
                4 => 0x0E,
                5 => 0x1F,
                6 => 0x20,
                7 => 0x21,
                8 => 0x85,
                9 => 0xA0,
                _ => b,
            });
        }
        // Long all-whitespace runs so the SIMD loop iterates.
        bytes.extend(std::iter::repeat_n(b' ', 100));
        for start in [0usize, 1, 7, 15, 16, 17, 33] {
            for len in [0usize, 1, 15, 16, 17, 31, 33, 100, 1000] {
                let end = (start + len).min(bytes.len());
                let chunk = &bytes[start..end];
                let naive = chunk
                    .iter()
                    .position(|&b| !matches!(b, 0x09..=0x0D | 0x20))
                    .unwrap_or(chunk.len());
                assert_eq!(
                    first_non_ascii_ws(chunk),
                    naive,
                    "diverges at start={start} len={len}"
                );
                let all_ws = &vec![b'\t'; len][..];
                assert_eq!(first_non_ascii_ws(all_ws), len);
            }
        }
    }

    #[test]
    fn detect_and_availability_are_consistent() {
        let e = Engine::detect();
        assert!(e.is_available());
        assert!(Engine::Scalar.is_available());
        assert!(!e.name().is_empty());
    }
}
