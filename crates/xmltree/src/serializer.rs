//! XML serialization: compact and pretty-printed writers with escaping.

use crate::tree::{Document, NodeId, NodeKind};

/// Serializes a document compactly (no inserted whitespace).
///
/// `parse ∘ to_string` is the identity on documents (checked by the
/// round-trip property tests).
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    write_node(&mut out, doc, doc.root());
    out
}

/// Serializes a document with an XML declaration and 2-space indentation.
///
/// Text-bearing elements are kept on one line so that significant text is
/// not padded with extra whitespace.
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_node_pretty(&mut out, doc, doc.root(), 0);
    out.push('\n');
    out
}

/// Iterative writer (documents can be arbitrarily deep).
fn write_node(out: &mut String, doc: &Document, node: NodeId) {
    enum Item {
        Node(NodeId),
        CloseTag(NodeId),
    }
    let mut stack = vec![Item::Node(node)];
    while let Some(item) = stack.pop() {
        match item {
            Item::CloseTag(n) => {
                out.push_str("</");
                out.push_str(doc.name(n).expect("close tags are elements"));
                out.push('>');
            }
            Item::Node(n) => match doc.kind(n) {
                NodeKind::Text(t) => escape_text(out, t),
                NodeKind::Element { name, attributes } => {
                    out.push('<');
                    out.push_str(name);
                    for a in attributes {
                        out.push(' ');
                        out.push_str(&a.name);
                        out.push_str("=\"");
                        escape_attr(out, &a.value);
                        out.push('"');
                    }
                    let children = doc.children(n);
                    if children.is_empty() {
                        out.push_str("/>");
                    } else {
                        out.push('>');
                        stack.push(Item::CloseTag(n));
                        for &c in children.iter().rev() {
                            stack.push(Item::Node(c));
                        }
                    }
                }
            },
        }
    }
}

fn write_node_pretty(out: &mut String, doc: &Document, node: NodeId, indent: usize) {
    match doc.kind(node) {
        NodeKind::Text(t) => escape_text(out, t),
        NodeKind::Element { name, attributes } => {
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push('<');
            out.push_str(name);
            for a in attributes {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                escape_attr(out, &a.value);
                out.push('"');
            }
            let children = doc.children(node);
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            let mixed = children.iter().any(|&c| doc.text(c).is_some());
            out.push('>');
            if mixed {
                // Inline: preserve text exactly.
                for &c in children {
                    match doc.kind(c) {
                        NodeKind::Text(t) => escape_text(out, t),
                        NodeKind::Element { .. } => {
                            let mut inner = String::new();
                            write_node(&mut inner, doc, c);
                            out.push_str(&inner);
                        }
                    }
                }
            } else {
                for &c in children {
                    out.push('\n');
                    write_node_pretty(out, doc, c, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str("  ");
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

fn escape_text(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<a x="1&amp;2"><b/><c>t &lt; u</c></a>"#;
        let d = parse_document(src).unwrap();
        assert_eq!(to_string(&d), src);
    }

    #[test]
    fn escaping() {
        let mut d = Document::new("a");
        d.set_attribute(d.root(), "q", "say \"hi\" & <go>");
        d.add_text(d.root(), "1 < 2 & 3 > 2");
        let s = to_string(&d);
        assert_eq!(
            s,
            "<a q=\"say &quot;hi&quot; &amp; &lt;go&gt;\">1 &lt; 2 &amp; 3 &gt; 2</a>"
        );
        // and it reparses to the same values
        let d2 = parse_document(&s).unwrap();
        assert_eq!(d2.attribute(d2.root(), "q"), Some("say \"hi\" & <go>"));
    }

    #[test]
    fn pretty_print_structure() {
        let d = parse_document("<a><b><c/></b><d>text</d></a>").unwrap();
        let s = to_string_pretty(&d);
        assert!(s.starts_with("<?xml"));
        assert!(s.contains("\n  <b>\n    <c/>\n  </b>"));
        assert!(s.contains("<d>text</d>"));
    }

    #[test]
    fn pretty_print_reparses_equal_modulo_whitespace() {
        let d = parse_document("<a><b x=\"1\"/><c>hi</c></a>").unwrap();
        let d2 = parse_document(&to_string_pretty(&d)).unwrap();
        assert_eq!(d2.ch_str(d2.root()), vec!["b", "c"]);
        let c = d2.element_children(d2.root()).nth(1).unwrap();
        assert_eq!(d2.text(d2.children(c)[0]), Some("hi"));
    }
}
