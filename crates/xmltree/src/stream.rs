//! Pull-based streaming XML reader with zero-copy tokens.
//!
//! [`XmlReader`] lexes a document into a flat sequence of [`XmlToken`]s —
//! start/end tags, coalesced character data, the DOCTYPE — without ever
//! building a tree, and (new in this revision) without materializing
//! owned `String`s on the hot path:
//!
//! * token payloads are `&str` slices **borrowed from the reader** — from
//!   the source window when the bytes appear verbatim in the input (the
//!   overwhelmingly common case), or from an internal scratch buffer when
//!   decoding was required (entity references, CDATA splicing). Either
//!   way the consumer sees fully decoded text with no per-event
//!   allocation; slices stay valid until the next [`XmlReader::next_event`]
//!   call (consumption of the underlying bytes is deferred until then);
//! * lexing is **two-stage** (simdjson-style): stage 1
//!   ([`crate::simd`]) scans each buffer chunk once with SIMD compare
//!   lanes (SSE2/NEON, runtime-dispatched) and records a compact
//!   [`StructIdx`] of structural positions (`<`, `>`, `"`, `'`, `&`,
//!   `]`), newline offsets, and a batched UTF-8 validity watermark;
//!   stage 2 (this module's token layer) walks the index — a text run
//!   ends at the next `<`/`&` mark, a tag extent is the next unquoted
//!   `>` mark with quote marks hopped pairwise, and a complete tag is
//!   parsed out of the materialized slice in one pass. Positions in the
//!   index are **absolute**, so they survive [`IoSrc`] window
//!   compaction unchanged. On anything unusual (entity references in
//!   attribute values, malformed tags, spans reaching past the UTF-8
//!   watermark, oversized tokens, end of input) the token layer falls
//!   back to the scalar scan of the same bytes, which keeps errors and
//!   positions byte-identical by construction;
//! * the scalar fallback — also selected by [`Engine::Scalar`] via
//!   [`XmlReader::set_engine`] or the `BONXAI_NO_SIMD` environment
//!   variable — skips the index entirely: delimiter searches use SWAR
//!   word-at-a-time scanning ([`mod@self`]-internal `memchr`-style
//!   helpers), exactly the pre-index code path;
//! * UTF-8 is validated in bulk per indexed chunk (SIMD engines) or
//!   once per slice at token boundaries (scalar engine), never per
//!   character; spans proven valid are materialized without a second
//!   validation pass;
//! * element names are interned into a dense per-reader pool on first
//!   occurrence: every start/end token carries a [`NameId`], so a
//!   streaming validator can map names to schema symbols with one array
//!   load per element and never touch string data on the match path.
//!
//! The reader is generic over a [`ByteSrc`]:
//!
//! * [`SliceSrc`] — a borrowed in-memory buffer (zero copies, used by
//!   [`crate::parse`]);
//! * [`IoSrc`] — any [`std::io::Read`] behind a small rolling window, so
//!   arbitrarily large documents arriving from a file or socket are
//!   consumed in O(window + depth) memory. The window compacts its
//!   consumed prefix only past a threshold (not on every refill), and the
//!   reader bounds any single token to [`XmlReader::max_token`] bytes so
//!   the window cannot grow without limit on adversarial input.
//!
//! Character data is coalesced exactly as the tree parser merges text
//! nodes: one [`XmlToken::Text`] per maximal run of character data, CDATA
//! sections, and entity expansions, with comments and processing
//! instructions spliced out. Whitespace-only runs are preserved.
//!
//! General entities declared in the internal DTD subset are expanded
//! recursively (nested `&ref;` inside an entity value is resolved), with a
//! depth bound ([`MAX_ENTITY_DEPTH`]) and a total-output bound
//! ([`MAX_ENTITY_EXPANSION`]) so recursive or billion-laughs-style inputs
//! fail with a positioned [`ParseError`] instead of diverging.
//!
//! The previous owned-event reader is preserved verbatim as
//! [`crate::reference`] and pinned event-identical to this one by a
//! differential proptest (`tests/reader_differential.rs`).

use std::collections::BTreeMap;
use std::io::Read;

use crate::error::{ParseError, Position};
use crate::simd::{self, Engine};
use crate::tree::Attribute;

/// Maximum nesting depth of entity references inside entity values.
pub const MAX_ENTITY_DEPTH: usize = 16;

/// Maximum total bytes one content-level entity reference may expand to
/// (the billion-laughs guard).
pub const MAX_ENTITY_EXPANSION: usize = 1 << 20;

/// Default cap on the byte length of a single token (tag, text run,
/// comment, CDATA section); see [`XmlReader::set_max_token`].
pub const DEFAULT_MAX_TOKEN: usize = 16 * 1024 * 1024;

/// Size of the rolling window an [`IoSrc`] reads ahead.
const IO_CHUNK: usize = 64 * 1024;

/// Consumed-prefix length below which an [`IoSrc`] refill grows the
/// buffer in place instead of sliding the live tail down. Compacting on
/// every refill (the previous behavior) copies the whole unconsumed tail
/// each time the window is extended mid-token.
const COMPACT_THRESHOLD: usize = 4 * 1024;

/// Granularity of the stage-1 structural-index pass: each extension of
/// the index classifies at least this many bytes (when available), so
/// the SIMD kernel amortizes its setup over whole chunks instead of
/// being re-entered per token.
const IDX_CHUNK: usize = 4 * 1024;

/// An owned streaming XML event — [`XmlToken`] with the borrows
/// materialized (see [`XmlToken::to_event`]). Kept for consumers that
/// outlive the reader's buffer and for test fixtures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<!DOCTYPE name …>`, with the raw internal subset if present.
    /// Entity declarations from the subset take effect on later events.
    Doctype {
        /// The declared document-type name.
        name: String,
        /// The raw text between `[` and `]`, if a subset was present.
        internal_subset: Option<String>,
    },
    /// An element start tag (or the opening half of a self-closing tag).
    StartElement {
        /// Element name as written.
        name: String,
        /// Attributes in document order, entity references resolved.
        attributes: Vec<Attribute>,
        /// Whether the tag was written `<name …/>`. A matching
        /// [`XmlEvent::EndElement`] is synthesized either way.
        self_closing: bool,
        /// Position of the `<`.
        position: Position,
    },
    /// An element end tag (synthesized for self-closing tags).
    EndElement {
        /// Element name.
        name: String,
        /// Position of the `</` (or of the end of a self-closing tag).
        position: Position,
    },
    /// A maximal run of character data (text, CDATA, entity expansions).
    /// Never empty; whitespace-only runs are emitted.
    Text {
        /// The decoded character data.
        text: String,
        /// Position where the run began.
        position: Position,
    },
    /// End of the document (after the root element and trailing misc).
    EndDocument,
}

/// Dense id of a distinct element name within one [`XmlReader`].
///
/// Ids are assigned in first-occurrence order of element names in
/// document order — exactly the order [`crate::tree::Document`] interns
/// names when the tree parser folds over the same events — so a
/// streaming consumer can maintain a per-id side table (e.g. resolved
/// schema symbols) as a plain dense vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NameId(u32);

impl NameId {
    /// The dense index of this name (0-based, first occurrence order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A borrowed streaming XML token. Payload slices live until the next
/// [`XmlReader::next_event`] call.
#[derive(Debug)]
pub enum XmlToken<'a> {
    /// `<!DOCTYPE name …>`, with the raw internal subset if present.
    Doctype {
        /// The declared document-type name.
        name: &'a str,
        /// The raw text between `[` and `]`, if a subset was present.
        internal_subset: Option<&'a str>,
    },
    /// An element start tag (or the opening half of a self-closing tag).
    StartElement {
        /// Element name as written.
        name: &'a str,
        /// Dense id of the name within this reader.
        name_id: NameId,
        /// Attributes in document order, decoded on demand.
        attributes: AttrList<'a>,
        /// Whether the tag was written `<name …/>`. A matching
        /// [`XmlToken::EndElement`] is synthesized either way.
        self_closing: bool,
        /// Position of the `<`.
        position: Position,
    },
    /// An element end tag (synthesized for self-closing tags).
    EndElement {
        /// Element name, resolved lazily from the reader's name pool —
        /// consumers that dispatch on `name_id` alone (the tree parser,
        /// the streaming validator) never pay the pool load.
        name: LazyName<'a>,
        /// Dense id of the name within this reader.
        name_id: NameId,
        /// Position of the `</` (or of the end of a self-closing tag).
        position: Position,
    },
    /// A maximal run of character data (text, CDATA, entity expansions).
    /// Never empty; whitespace-only runs are emitted.
    Text {
        /// The decoded character data.
        text: &'a str,
        /// Position where the run began.
        position: Position,
    },
    /// End of the document (after the root element and trailing misc).
    EndDocument,
}

/// A deferred element-name lookup: the [`NameId`] plus the pool it
/// resolves in. End tags always close the innermost open element, whose
/// name the reader already knows by id — materializing the `&str` on
/// every end token was pure overhead for consumers that only match on
/// the id, so the token carries this handle instead and [`Self::as_str`]
/// does the (single array-load) resolution on demand.
#[derive(Clone, Copy)]
pub struct LazyName<'a> {
    pool: &'a NamePool,
    id: NameId,
}

impl<'a> LazyName<'a> {
    /// The dense id of this name.
    #[inline]
    pub fn id(&self) -> NameId {
        self.id
    }

    /// Resolves the name string (one array load).
    #[inline]
    pub fn as_str(&self) -> &'a str {
        self.pool.get(self.id)
    }
}

impl std::fmt::Debug for LazyName<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq<&str> for LazyName<'_> {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl XmlToken<'_> {
    /// Whether this is [`XmlToken::EndDocument`].
    #[inline]
    pub fn is_end_document(&self) -> bool {
        matches!(self, XmlToken::EndDocument)
    }

    /// Materializes the borrows into an owned [`XmlEvent`].
    pub fn to_event(&self) -> XmlEvent {
        match self {
            XmlToken::Doctype {
                name,
                internal_subset,
            } => XmlEvent::Doctype {
                name: (*name).to_owned(),
                internal_subset: internal_subset.map(str::to_owned),
            },
            XmlToken::StartElement {
                name,
                attributes,
                self_closing,
                position,
                ..
            } => XmlEvent::StartElement {
                name: (*name).to_owned(),
                attributes: attributes
                    .iter()
                    .map(|a| Attribute {
                        name: a.name.to_owned(),
                        value: a.value.to_owned(),
                    })
                    .collect(),
                self_closing: *self_closing,
                position: *position,
            },
            XmlToken::EndElement { name, position, .. } => XmlEvent::EndElement {
                name: name.as_str().to_owned(),
                position: *position,
            },
            XmlToken::Text { text, position } => XmlEvent::Text {
                text: (*text).to_owned(),
                position: *position,
            },
            XmlToken::EndDocument => XmlEvent::EndDocument,
        }
    }
}

/// One decoded attribute of a start tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attr<'a> {
    /// Attribute name as written.
    pub name: &'a str,
    /// Attribute value, entity references resolved.
    pub value: &'a str,
}

/// Byte spans of one attribute within the current tag / scratch buffer.
#[derive(Clone, Copy, Debug)]
struct AttrSpan {
    name_start: u32,
    name_end: u32,
    val_start: u32,
    val_end: u32,
    /// Whether the value spans the entity scratch (decoded) instead of
    /// the raw tag bytes.
    val_in_scratch: bool,
}

/// The attributes of a start tag, decoded lazily from byte spans — no
/// per-event allocation happens for attributes the consumer never reads.
#[derive(Clone, Copy)]
pub struct AttrList<'a> {
    spans: &'a [AttrSpan],
    /// The raw bytes of the whole tag (`<` through `>`).
    tag: &'a [u8],
    /// Decoded attribute values that contained entity references.
    scratch: &'a str,
}

impl<'a> AttrList<'a> {
    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the tag had no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th attribute in document order.
    pub fn get(&self, i: usize) -> Attr<'a> {
        let sp = &self.spans[i];
        let name = str_from_checked(&self.tag[sp.name_start as usize..sp.name_end as usize]);
        let value = if sp.val_in_scratch {
            &self.scratch[sp.val_start as usize..sp.val_end as usize]
        } else {
            str_from_checked(&self.tag[sp.val_start as usize..sp.val_end as usize])
        };
        Attr { name, value }
    }

    /// Iterates over the attributes in document order.
    pub fn iter(&self) -> AttrIter<'a> {
        AttrIter { list: *self, i: 0 }
    }
}

impl std::fmt::Debug for AttrList<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over an [`AttrList`].
#[derive(Clone)]
pub struct AttrIter<'a> {
    list: AttrList<'a>,
    i: usize,
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = Attr<'a>;

    fn next(&mut self) -> Option<Attr<'a>> {
        if self.i < self.list.len() {
            let a = self.list.get(self.i);
            self.i += 1;
            Some(a)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.list.len() - self.i;
        (n, Some(n))
    }
}

impl<'a> IntoIterator for AttrList<'a> {
    type Item = Attr<'a>;
    type IntoIter = AttrIter<'a>;

    fn into_iter(self) -> AttrIter<'a> {
        self.iter()
    }
}

/// What an [`EventSink`] wants from character data inside an element,
/// declared once per element at its start tag. The fused drive loop
/// ([`XmlReader::drive`]) uses the declaration to skip materializing
/// text the sink would only throw away: under [`TextInterest::Ignore`]
/// a text run costs one mark lookup, under
/// [`TextInterest::NonWhitespace`] one vectorized whitespace scan, and
/// only [`TextInterest::Collect`] delivers the decoded bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TextInterest {
    /// Count the text node; its contents are irrelevant.
    Ignore,
    /// Report only whether the run contains a non-whitespace character
    /// (the element-only-content check of a streaming validator).
    NonWhitespace,
    /// Deliver the decoded text (simple-content accumulation).
    Collect,
}

/// One text node as delivered to [`EventSink::text`], shaped by the
/// enclosing element's [`TextInterest`].
#[derive(Debug)]
pub enum TextChunk<'a> {
    /// The enclosing interest was [`TextInterest::Ignore`].
    Skipped,
    /// Whether the run contains any non-whitespace character — exactly
    /// `text.chars().any(|c| !c.is_whitespace())` over the decoded run.
    NonWs(bool),
    /// The decoded run (never empty).
    Collect(&'a str),
}

/// A push-mode consumer for [`XmlReader::drive`]: the reader walks the
/// whole document and calls these methods in event order. Compared to
/// pulling [`XmlToken`]s, the sink seam lets the reader skip work the
/// consumer declares it does not need — end-tag tokens, `Position`
/// values, and text payloads are never materialized on the fused path —
/// while the event *sequence* (including per-event node counting) is
/// identical to the token stream by construction.
///
/// Sink methods are infallible; all errors during a drive are the
/// reader's own [`ParseError`]s. For every start tag there is exactly
/// one matching [`EventSink::end_element`] call (self-closing tags
/// included), and [`EventSink::text`] is called once per coalesced text
/// node, so sinks can count nodes exactly as a tree builder allocates
/// them.
pub trait EventSink {
    /// `<!DOCTYPE name …>` with the raw internal subset, if present.
    fn doctype(&mut self, _name: &str, _internal_subset: Option<&str>) {}

    /// An element start tag. The return value declares the sink's
    /// interest in character data directly inside this element.
    fn start_element(
        &mut self,
        name: &str,
        name_id: NameId,
        attributes: &AttrList<'_>,
        self_closing: bool,
    ) -> TextInterest;

    /// An element end tag (also synthesized for self-closing tags).
    /// Well-nested by construction: `name` and `name_id` always
    /// identify the innermost open element, so sinks need no name side
    /// table of their own.
    fn end_element(&mut self, name: &str, name_id: NameId);

    /// One coalesced text node, shaped by the enclosing element's
    /// [`TextInterest`].
    fn text(&mut self, chunk: TextChunk<'_>);
}

/// A source of bytes for the reader: a cursor with bounded lookahead.
pub trait ByteSrc {
    /// The bytes visible at the cursor, refilled to at least `n` bytes
    /// unless the input ends first. May return more than `n`. When no
    /// refill is needed (`n` bytes are already visible), the returned
    /// slice must be the same bytes at the same location as the last
    /// call — the reader materializes borrowed tokens from it.
    fn window(&mut self, n: usize) -> &[u8];
    /// Consumes `n` bytes (no more than the last window's length).
    fn advance(&mut self, n: usize);
}

/// An in-memory byte source borrowing the whole input.
pub struct SliceSrc<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSrc<'a> {
    /// Wraps a borrowed buffer.
    pub fn new(data: &'a [u8]) -> Self {
        SliceSrc { data, pos: 0 }
    }
}

impl ByteSrc for SliceSrc<'_> {
    #[inline]
    fn window(&mut self, _n: usize) -> &[u8] {
        &self.data[self.pos..]
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        self.pos += n;
    }
}

/// A byte source over any [`Read`], keeping only a small rolling window
/// in memory — this is what makes end-to-end streaming validation
/// O(depth) in document size.
pub struct IoSrc<R: Read> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
}

impl<R: Read> IoSrc<R> {
    /// Wraps a reader. No buffering layer is needed underneath; the
    /// source reads in [`IO_CHUNK`]-sized chunks.
    pub fn new(src: R) -> Self {
        IoSrc {
            src,
            buf: Vec::with_capacity(IO_CHUNK),
            pos: 0,
            eof: false,
        }
    }
}

impl<R: Read> ByteSrc for IoSrc<R> {
    fn window(&mut self, n: usize) -> &[u8] {
        while self.buf.len() - self.pos < n && !self.eof {
            // Drop the consumed prefix before growing the window — but
            // only once it dominates the buffer. Compacting on every
            // refill would copy the live tail each time a long token
            // forces the window to extend.
            if self.pos >= COMPACT_THRESHOLD && self.pos >= self.buf.len() / 2 {
                self.buf.copy_within(self.pos.., 0);
                self.buf.truncate(self.buf.len() - self.pos);
                self.pos = 0;
            }
            let old = self.buf.len();
            self.buf.resize(old + IO_CHUNK, 0);
            match self.src.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    self.eof = true;
                }
                Ok(k) => self.buf.truncate(old + k),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.truncate(old);
                }
                Err(_) => {
                    // Surfaced as "unexpected end of input" by the lexer;
                    // positioned errors beat a panic mid-stream.
                    self.buf.truncate(old);
                    self.eof = true;
                }
            }
        }
        &self.buf[self.pos..]
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Where the reader is in the document grammar.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// Before the root element: XML declaration, misc, DOCTYPE.
    Prolog,
    /// Inside the root element.
    Content,
    /// After the root element: trailing misc only.
    Epilog,
    /// [`XmlToken::EndDocument`] has been emitted.
    Done,
}

/// Result of a forward scan from the cursor: the relative offset of the
/// first matching byte, or the relative offset of end-of-input.
enum Scan {
    Hit(usize),
    Eof(usize),
}

/// Stage-1 output: the structural index built ahead of the cursor by the
/// SIMD classification pass ([`crate::simd`]).
///
/// All positions are **absolute** document offsets — [`IoSrc`] window
/// compaction shifts buffer contents but never the reader's coordinate
/// system, so index entries survive refills untouched. Invariants:
///
/// * `marks` is sorted; every entry is `(abs_pos << 3) | class` for a
///   structural byte in `[0, indexed_to)`; entries before `head` are
///   behind the cursor (kept until a batched drain);
/// * `nls` is the sorted newline positions of the same range, consumed
///   destructively (`nl_head`) as the cursor passes them;
/// * bytes in `[0, utf8_valid_to)` are proven valid UTF-8, except that
///   when `utf8_bad = Some(b)`, validation is frozen: `b` starts an
///   invalid sequence and `utf8_valid_to == b`. The watermark resumes
///   only after the cursor passes `b` through a construct that is never
///   UTF-8-checked (comments, PIs, DOCTYPE) — token paths that *do*
///   check report `b` first.
struct StructIdx {
    engine: Engine,
    /// Packed structural marks: `(abs_pos << 3) | class`, sorted.
    marks: Vec<u64>,
    /// First mark not yet known to be behind the cursor.
    head: usize,
    /// Absolute newline positions, sorted.
    nls: Vec<u64>,
    /// First newline the cursor has not passed.
    nl_head: usize,
    /// Absolute offset up to which the input has been classified.
    indexed_to: usize,
    /// Absolute offset up to which the input is proven valid UTF-8.
    utf8_valid_to: usize,
    /// First byte of an invalid UTF-8 sequence, if one froze the
    /// watermark.
    utf8_bad: Option<usize>,
}

impl StructIdx {
    fn new(engine: Engine) -> Self {
        StructIdx {
            engine,
            // Pre-sized so steady-state indexing (prune keeps both lists
            // near one window's worth of entries) never reallocates.
            marks: Vec::with_capacity(2048),
            head: 0,
            nls: Vec::with_capacity(256),
            nl_head: 0,
            indexed_to: 0,
            utf8_valid_to: 0,
            utf8_bad: None,
        }
    }

    /// First mark at `pos >= from_abs` with `pos < end_abs` whose class
    /// bit is set in `mask`.
    #[inline]
    fn find_in(&self, from_abs: usize, end_abs: usize, mask: u8) -> Option<(usize, u8)> {
        // `prune` keeps `head` at the cursor, so the first in-range mark
        // is almost always within a few entries: probe linearly, and
        // binary-search only on a long skip.
        let mut lo = self.head;
        let mut steps = 0;
        while let Some(&m) = self.marks.get(lo) {
            if (m >> 3) >= from_abs as u64 {
                break;
            }
            lo += 1;
            steps += 1;
            if steps == 8 {
                lo = self.head
                    + self.marks[self.head..].partition_point(|&m| (m >> 3) < from_abs as u64);
                break;
            }
        }
        for &m in &self.marks[lo..] {
            let pos = (m >> 3) as usize;
            if pos >= end_abs {
                return None;
            }
            let class = (m & 7) as u8;
            if mask & (1 << class) != 0 {
                return Some((pos, class));
            }
        }
        None
    }

    /// Retires index state behind the cursor: advances `head`, drains
    /// the retired prefixes once they dominate their vectors (keeping
    /// memory O(window)), and unfreezes the UTF-8 watermark when the
    /// cursor has passed a frozen bad byte (only unchecked constructs —
    /// comments, PIs, DOCTYPE — can step over one).
    fn prune(&mut self, cursor: usize) {
        while self
            .marks
            .get(self.head)
            .is_some_and(|&m| (m >> 3) < cursor as u64)
        {
            self.head += 1;
        }
        if self.head > 1024 && self.head * 2 >= self.marks.len() {
            self.marks.drain(..self.head);
            self.head = 0;
        }
        if self.nl_head > 1024 && self.nl_head * 2 >= self.nls.len() {
            self.nls.drain(..self.nl_head);
            self.nl_head = 0;
        }
        if self.utf8_bad.is_some_and(|b| b < cursor) {
            self.utf8_bad = None;
            self.utf8_valid_to = self.utf8_valid_to.max(cursor);
        }
    }
}

/// Dense interner of element names: open addressing over FNV-1a,
/// `slots[h] = id + 1`, 0 = empty, kept at most half full. One hash +
/// one probe chain per intern; misses insert into the slot the probe
/// already found. A most-recently-interned memo short-circuits the
/// hash entirely for runs of same-named siblings — the dominant shape
/// of real documents.
#[derive(Default)]
struct NamePool {
    names: Vec<String>,
    slots: Vec<u32>,
    last: u32,
}

impl NamePool {
    /// Interns raw name bytes, validating UTF-8 only on first
    /// occurrence. `None` means the bytes are not valid UTF-8.
    fn intern(&mut self, bytes: &[u8]) -> Option<NameId> {
        if let Some(n) = self.names.get(self.last as usize) {
            if n.as_bytes() == bytes {
                return Some(NameId(self.last));
            }
        }
        let mut idx = 0usize;
        if !self.slots.is_empty() {
            let mask = self.slots.len() - 1;
            idx = fnv1a(bytes) as usize & mask;
            loop {
                match self.slots[idx] {
                    0 => break,
                    s => {
                        if self.names[(s - 1) as usize].as_bytes() == bytes {
                            self.last = s - 1;
                            return Some(NameId(s - 1));
                        }
                    }
                }
                idx = (idx + 1) & mask;
            }
        }
        let name = std::str::from_utf8(bytes).ok()?;
        let id = u32::try_from(self.names.len()).expect("name-pool overflow");
        self.last = id;
        self.names.push(name.to_owned());
        if (self.names.len() + 1) * 2 > self.slots.len() {
            self.rebuild();
        } else {
            self.slots[idx] = id + 1;
        }
        Some(NameId(id))
    }

    fn rebuild(&mut self) {
        let cap = (self.names.len() * 4).next_power_of_two().max(8);
        self.slots = vec![0; cap];
        let mask = cap - 1;
        for (i, n) in self.names.iter().enumerate() {
            let mut idx = fnv1a(n.as_bytes()) as usize & mask;
            while self.slots[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = i as u32 + 1;
        }
    }

    #[inline]
    fn get(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }
}

/// Materializes a byte span that an earlier UTF-8 check has already
/// proven valid — `check_utf8` (scalar engine), the chunked window
/// watermark (`StructIdx::utf8_valid_to`, SIMD engines), or name-pool
/// interning — without paying a second validation pass.
#[allow(unsafe_code)]
#[inline]
fn str_from_checked(bytes: &[u8]) -> &str {
    debug_assert!(std::str::from_utf8(bytes).is_ok(), "span was checked");
    // SAFETY: every call site runs strictly after a successful UTF-8
    // validation of this exact span (see the doc comment); the span is
    // immutable in between.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

/// Whether `s` contains any non-whitespace character, by the same
/// predicate the tree builder applies (`char::is_whitespace`). The SIMD
/// sweep skips the ASCII whitespace prefix; the first non-ASCII-ws byte
/// decides directly if it's ASCII (no ASCII byte outside the swept set
/// is whitespace), and hands the remainder to the `char` predicate
/// otherwise (bytes ≥ 0x80 can decode to Unicode whitespace like
/// U+0085/U+00A0, which the tree path treats as whitespace).
#[inline]
fn has_non_ws(s: &str) -> bool {
    let k = simd::first_non_ascii_ws(s.as_bytes());
    match s.as_bytes().get(k) {
        None => false,
        Some(&b) if b < 0x80 => true,
        Some(_) => s[k..].chars().any(|c| !c.is_whitespace()),
    }
}

/// Whether an extent-resolved end tag (`tag` starts `</`, ends with its
/// own `>`) closes exactly `expected`: `</expected␣*>` with the name
/// ending at a non-name byte. Anything else goes back through the
/// scalar scan for its exact error.
fn parse_end_tag_slice(tag: &[u8], expected: &[u8]) -> bool {
    let n = tag.len();
    let ne = 2 + expected.len();
    if n < ne + 1 || &tag[2..ne] != expected || is_name_char(tag[ne]) {
        return false;
    }
    tag[ne..n - 1]
        .iter()
        .all(|&c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// SWAR delimiter scanning (no external memchr: the workspace is
// dependency-free). The has-zero-byte trick: a byte of x is zero iff
// `(x - 0x01…01) & !x & 0x80…80` has that byte's high bit set.
// ---------------------------------------------------------------------

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn swar_word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
}

#[inline]
fn swar_has_zero(x: u64) -> bool {
    (x.wrapping_sub(SWAR_LO) & !x & SWAR_HI) != 0
}

/// First occurrence of `a` in `hay`.
#[inline]
pub(crate) fn memchr(a: u8, hay: &[u8]) -> Option<usize> {
    let pa = SWAR_LO.wrapping_mul(u64::from(a));
    let mut i = 0;
    while i + 8 <= hay.len() {
        if swar_has_zero(swar_word(&hay[i..i + 8]) ^ pa) {
            break;
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == a).map(|k| i + k)
}

/// First occurrence of `a` or `b` in `hay`.
#[inline]
pub(crate) fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    let pa = SWAR_LO.wrapping_mul(u64::from(a));
    let pb = SWAR_LO.wrapping_mul(u64::from(b));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let x = swar_word(&hay[i..i + 8]);
        if swar_has_zero(x ^ pa) || swar_has_zero(x ^ pb) {
            break;
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&c| c == a || c == b)
        .map(|k| i + k)
}

/// First occurrence of `a`, `b`, or `c` in `hay`.
#[inline]
pub(crate) fn memchr3(a: u8, b: u8, c: u8, hay: &[u8]) -> Option<usize> {
    let pa = SWAR_LO.wrapping_mul(u64::from(a));
    let pb = SWAR_LO.wrapping_mul(u64::from(b));
    let pc = SWAR_LO.wrapping_mul(u64::from(c));
    let mut i = 0;
    while i + 8 <= hay.len() {
        let x = swar_word(&hay[i..i + 8]);
        if swar_has_zero(x ^ pa) || swar_has_zero(x ^ pb) || swar_has_zero(x ^ pc) {
            break;
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&d| d == a || d == b || d == c)
        .map(|k| i + k)
}

/// Decoded output of one entity reference (cold path).
enum Expanded {
    Ch(char),
    Pre(&'static str),
    Owned(String),
}

/// Capacity of one [`CachedTag`]; longer tags bypass the cache.
const TAG_CACHE_BYTES: usize = 24;

/// One entry of the start-tag cache: the raw bytes of a recently
/// scanned attribute-free start tag and the scan's result. Tag scanning
/// is a pure function of the tag bytes (given the monotone name pool),
/// so byte equality proves the cached result — documents repeat the
/// same short tags thousands of times, and a hit replaces the per-byte
/// name walk, whitespace walk, and intern with one compare.
#[derive(Clone, Copy)]
struct CachedTag {
    /// Tag length in bytes including `<`/`>`; 0 = empty slot.
    len: u8,
    self_closing: bool,
    name_id: NameId,
    bytes: [u8; TAG_CACHE_BYTES],
}

impl CachedTag {
    const EMPTY: CachedTag = CachedTag {
        len: 0,
        self_closing: false,
        name_id: NameId(0),
        bytes: [0; TAG_CACHE_BYTES],
    };
}

/// Cache slot for a tag: mixes the first name byte with the length so
/// sibling runs that alternate between a few short tags spread out.
#[inline]
fn tag_cache_slot(first: u8, len: usize) -> usize {
    (first as usize ^ (len << 1)) & 7
}

/// A pull-based streaming XML parser; see the module docs.
pub struct XmlReader<S> {
    src: S,
    /// Absolute byte offset of the cursor.
    offset: usize,
    line: u32,
    /// Absolute offset where the current line starts.
    line_start: usize,
    /// Bytes of the last-returned borrowed token, consumed from `src` on
    /// the next pull. Deferring consumption is what keeps the returned
    /// slices valid while the caller holds the token.
    pending: usize,
    /// Cap on the byte length of a single token; bounds rolling-window
    /// growth on adversarial input.
    max_token: usize,
    /// General entities from the internal subset (beyond the predefined 5),
    /// raw (unexpanded) as declared.
    entities: BTreeMap<String, String>,
    /// Fully-expanded entity values, memoized on first reference.
    expanded: BTreeMap<String, String>,
    /// Distinct element names in first-occurrence order.
    names: NamePool,
    /// Open element names, innermost last.
    open: Vec<NameId>,
    stage: Stage,
    /// End event owed for a just-emitted self-closing start tag.
    pending_end: Option<(NameId, Position)>,
    /// Attribute spans of the tag being returned.
    attr_spans: Vec<AttrSpan>,
    /// Decoded attribute values that contained entity references.
    attr_scratch: String,
    /// Decoded character data when a text run needed splicing (entities,
    /// CDATA, embedded comments/PIs).
    text_scratch: String,
    /// DOCTYPE payload backing the borrowed [`XmlToken::Doctype`].
    doctype_name: String,
    doctype_subset: Option<String>,
    /// The stage-1 structural index; `None` ⇔ [`Engine::Scalar`] (the
    /// SWAR fallback paths run instead).
    idx: Option<StructIdx>,
    /// Direct-mapped cache of recently scanned attribute-free start
    /// tags, probed by the indexed scan (see [`CachedTag`]).
    tag_cache: [CachedTag; 8],
}

/// A reader over a borrowed in-memory document.
pub type StrReader<'a> = XmlReader<SliceSrc<'a>>;

impl<'a> XmlReader<SliceSrc<'a>> {
    /// Streams over an in-memory document.
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(input: &'a str) -> Self {
        XmlReader::with_source(SliceSrc::new(input.as_bytes()))
    }
}

impl<R: Read> XmlReader<IoSrc<R>> {
    /// Streams over any [`Read`] (file, socket, stdin) with a rolling
    /// window — the whole document is never resident.
    pub fn from_reader(src: R) -> Self {
        XmlReader::with_source(IoSrc::new(src))
    }
}

impl<S: ByteSrc> XmlReader<S> {
    /// Wraps an arbitrary byte source.
    pub fn with_source(src: S) -> Self {
        let engine = Engine::detect();
        XmlReader {
            src,
            offset: 0,
            line: 1,
            line_start: 0,
            pending: 0,
            max_token: DEFAULT_MAX_TOKEN,
            entities: BTreeMap::new(),
            expanded: BTreeMap::new(),
            names: NamePool::default(),
            open: Vec::new(),
            stage: Stage::Prolog,
            pending_end: None,
            attr_spans: Vec::new(),
            attr_scratch: String::new(),
            text_scratch: String::new(),
            doctype_name: String::new(),
            doctype_subset: None,
            idx: (engine != Engine::Scalar).then(|| StructIdx::new(engine)),
            tag_cache: [CachedTag::EMPTY; 8],
        }
    }

    /// Selects the lexing engine. [`Engine::Scalar`] disables the
    /// structural index entirely (the forced-scalar escape hatch, also
    /// reachable via the `BONXAI_NO_SIMD` environment variable);
    /// requesting an engine this machine lacks falls back to scalar.
    /// May be called mid-stream: index state is rebuilt from the cursor
    /// and results never change — only throughput does.
    pub fn set_engine(&mut self, engine: Engine) {
        let engine = if engine.is_available() {
            engine
        } else {
            Engine::Scalar
        };
        self.idx = (engine != Engine::Scalar).then(|| StructIdx::new(engine));
    }

    /// The lexing engine in use (see [`Engine::detect`]).
    pub fn engine(&self) -> Engine {
        self.idx.as_ref().map_or(Engine::Scalar, |i| i.engine)
    }

    /// Sets the cap on the byte length of a single token (tag, text
    /// run, comment, CDATA section). Exceeding it yields a positioned
    /// "token too large" [`ParseError`] instead of unbounded buffer
    /// growth. Defaults to [`DEFAULT_MAX_TOKEN`].
    pub fn set_max_token(&mut self, max: usize) {
        self.max_token = max.max(16);
    }

    /// The current cursor position (for error reporting by consumers).
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.offset - self.line_start) as u32 + 1,
            offset: self.offset,
        }
    }

    /// Current element nesting depth (0 outside the root element). A
    /// self-closing element counts until its synthesized end event.
    pub fn depth(&self) -> usize {
        self.open.len() + usize::from(self.pending_end.is_some())
    }

    /// Number of distinct element names seen so far. [`NameId`]s are
    /// dense: `name_id.index() < name_count()` on every returned token.
    pub fn name_count(&self) -> usize {
        self.names.names.len()
    }

    // -- consumption & positions ------------------------------------

    /// Consumes the bytes of the previously returned borrowed token.
    #[inline]
    fn commit(&mut self) {
        if self.pending > 0 {
            self.src.advance(self.pending);
            self.pending = 0;
        }
    }

    /// Advances line/offset accounting over the next `n` visible bytes
    /// (which must already be buffered).
    fn register(&mut self, n: usize) {
        if self.idx.is_some() {
            self.register_indexed(n);
            return;
        }
        let w = self.src.window(n);
        let w = &w[..n.min(w.len())];
        let mut from = 0;
        while let Some(k) = memchr(b'\n', &w[from..]) {
            self.line += 1;
            self.line_start = self.offset + from + k + 1;
            from += k + 1;
        }
        self.offset += n;
    }

    /// Indexed [`Self::register`]: instead of re-scanning the consumed
    /// bytes for newlines, walks the newline positions stage 1 already
    /// recorded (amortized O(#newlines), not O(bytes)).
    fn register_indexed(&mut self, n: usize) {
        let end = self.offset + n;
        self.index_to_abs(end);
        let idx = self.idx.as_mut().expect("register_indexed needs the index");
        while let Some(&p) = idx.nls.get(idx.nl_head) {
            let p = p as usize;
            if p >= end {
                break;
            }
            idx.nl_head += 1;
            // Entries behind the cursor were already counted by the
            // byte-at-a-time DOCTYPE path; skip them silently.
            if p >= self.offset {
                self.line += 1;
                self.line_start = p + 1;
            }
        }
        self.offset = end;
        idx.prune(end);
    }

    /// Extends the structural index (and the batched UTF-8 watermark) to
    /// cover the input up to absolute offset `target`, or to end of
    /// input, whichever comes first. The hot case — already covered —
    /// is a single comparison; [`Self::index_fill`] does the work.
    #[inline]
    fn index_to_abs(&mut self, target: usize) {
        match &self.idx {
            Some(i) if i.indexed_to >= target => {}
            Some(_) => self.index_fill(target),
            None => {}
        }
    }

    /// Classifies chunks until the index covers `target` or end of
    /// input. Each step takes at least [`IDX_CHUNK`] bytes when
    /// available.
    #[cold]
    fn index_fill(&mut self, target: usize) {
        let offset = self.offset;
        let XmlReader { src, idx, .. } = self;
        let Some(idx) = idx.as_mut() else { return };
        if idx.indexed_to < offset {
            // A cold path (DOCTYPE subset) advanced the cursor byte-wise
            // past the indexed region; restart cleanly at the cursor.
            idx.indexed_to = offset;
            idx.utf8_valid_to = idx.utf8_valid_to.max(offset);
            if idx.utf8_bad.is_some_and(|b| b < offset) {
                idx.utf8_bad = None;
            }
        }
        while idx.indexed_to < target {
            let base_rel = idx.indexed_to - offset;
            let want_rel = (target - offset).max(base_rel + IDX_CHUNK);
            let w = src.window(want_rel);
            if w.len() <= base_rel {
                return; // end of input
            }
            let take = (w.len() - base_rel).min((target - idx.indexed_to).max(IDX_CHUNK));
            let all_ascii = simd::classify(
                idx.engine,
                &w[base_rel..base_rel + take],
                idx.indexed_to,
                &mut idx.marks,
                &mut idx.nls,
            );
            let new_end = idx.indexed_to + take;
            if idx.utf8_bad.is_none() {
                if all_ascii && idx.utf8_valid_to == idx.indexed_to {
                    idx.utf8_valid_to = new_end;
                } else {
                    // Resume from the watermark, clamped to the cursor:
                    // after a frozen bad byte is pruned away (it sat in
                    // a construct that is never UTF-8-checked) the
                    // watermark trails the cursor, and the cursor —
                    // always just past an ASCII delimiter — is a safe
                    // char boundary to restart validation from.
                    let v_rel = idx.utf8_valid_to.saturating_sub(offset);
                    match std::str::from_utf8(&w[v_rel..base_rel + take]) {
                        Ok(_) => idx.utf8_valid_to = new_end,
                        Err(e) => {
                            idx.utf8_valid_to = offset + v_rel + e.valid_up_to();
                            if e.error_len().is_some() {
                                idx.utf8_bad = Some(idx.utf8_valid_to);
                            }
                            // else: a truncated char at end of input —
                            // the watermark just stops short of it.
                        }
                    }
                }
            }
            idx.indexed_to = new_end;
        }
    }

    /// Ensures the index covers at least `min_rel` bytes past the cursor
    /// (or end of input) and returns how many bytes it does cover.
    fn index_cover(&mut self, min_rel: usize) -> usize {
        self.index_to_abs(self.offset + min_rel);
        let offset = self.offset;
        self.idx.as_ref().map_or(0, |i| i.indexed_to - offset)
    }

    /// Consumes `n` bytes immediately (for data not borrowed by the
    /// returned token: comments, PIs, scratch-decoded runs, DOCTYPE).
    fn consume_now(&mut self, n: usize) {
        self.register(n);
        self.src.advance(n);
    }

    /// Accounts for `n` bytes but defers the source advance until the
    /// next pull, keeping the token's slices valid meanwhile.
    fn defer_consume(&mut self, n: usize) {
        debug_assert_eq!(self.pending, 0, "one borrowed token at a time");
        self.register(n);
        self.pending = n;
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    /// Position of the byte at relative offset `i` from the cursor
    /// (clamped to end of input).
    fn position_at(&mut self, i: usize) -> Position {
        if self.idx.is_some() {
            // Non-consuming walk of the recorded newline positions.
            let covered = self.index_cover(i);
            let upto = i.min(covered);
            let end = self.offset + upto;
            let idx = self.idx.as_ref().expect("position_at needs the index");
            let mut line = self.line;
            let mut line_start = self.line_start;
            for &p in &idx.nls[idx.nl_head..] {
                let p = p as usize;
                if p >= end {
                    break;
                }
                if p >= self.offset {
                    line += 1;
                    line_start = p + 1;
                }
            }
            return Position {
                line,
                column: (end - line_start) as u32 + 1,
                offset: end,
            };
        }
        let w = self.src.window(i);
        let upto = i.min(w.len());
        let mut line = self.line;
        let mut line_start = self.line_start;
        let mut from = 0;
        while let Some(k) = memchr(b'\n', &w[from..upto]) {
            line += 1;
            line_start = self.offset + from + k + 1;
            from += k + 1;
        }
        Position {
            line,
            column: (self.offset + upto - line_start) as u32 + 1,
            offset: self.offset + upto,
        }
    }

    fn err_at(&mut self, i: usize, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position_at(i), msg)
    }

    fn err_too_large(&mut self) -> ParseError {
        let max = self.max_token;
        self.err(format!("token too large: exceeds {max} bytes"))
    }

    // -- non-consuming scanning -------------------------------------

    /// Byte at relative offset `i`, if the input is long enough.
    #[inline]
    fn at(&mut self, i: usize) -> Option<u8> {
        self.src.window(i + 1).get(i).copied()
    }

    /// Whether the bytes at relative offset `i` start with `s`.
    fn starts_with_at(&mut self, i: usize, s: &str) -> bool {
        let end = i + s.len();
        let w = self.src.window(end);
        w.len() >= end && &w[i..end] == s.as_bytes()
    }

    /// Scans forward from relative offset `from` for the first byte
    /// `find` locates, growing the window as needed up to `max_token`.
    fn scan_for(
        &mut self,
        from: usize,
        find: impl Fn(&[u8]) -> Option<usize>,
    ) -> Result<Scan, ParseError> {
        let mut i = from;
        loop {
            let w = self.src.window(i + 1);
            if w.len() <= i {
                return Ok(Scan::Eof(w.len()));
            }
            if let Some(k) = find(&w[i..]) {
                if i + k > self.max_token {
                    return Err(self.err_too_large());
                }
                return Ok(Scan::Hit(i + k));
            }
            i = w.len();
            if i > self.max_token {
                return Err(self.err_too_large());
            }
        }
    }

    fn find_byte(&mut self, from: usize, a: u8) -> Result<Scan, ParseError> {
        if self.idx.is_some() {
            if let Some(m) = simd::struct_mask(a) {
                return self.idx_find(from, m);
            }
        }
        self.scan_for(from, |h| memchr(a, h))
    }

    fn find2(&mut self, from: usize, a: u8, b: u8) -> Result<Scan, ParseError> {
        if self.idx.is_some() {
            if let (Some(ma), Some(mb)) = (simd::struct_mask(a), simd::struct_mask(b)) {
                return self.idx_find(from, ma | mb);
            }
        }
        self.scan_for(from, |h| memchr2(a, b, h))
    }

    fn find3(&mut self, from: usize, a: u8, b: u8, c: u8) -> Result<Scan, ParseError> {
        if self.idx.is_some() {
            if let (Some(ma), Some(mb), Some(mc)) = (
                simd::struct_mask(a),
                simd::struct_mask(b),
                simd::struct_mask(c),
            ) {
                return self.idx_find(from, ma | mb | mc);
            }
        }
        self.scan_for(from, |h| memchr3(a, b, c, h))
    }

    /// Index-walking twin of [`Self::scan_for`] for structural-byte
    /// searches, with identical end-of-input and `max_token` semantics
    /// (and therefore identical errors).
    fn idx_find(&mut self, from: usize, mask: u8) -> Result<Scan, ParseError> {
        let mut probe = from;
        loop {
            let covered = self.index_cover(probe + 1);
            if covered <= probe {
                return Ok(Scan::Eof(covered));
            }
            let offset = self.offset;
            let idx = self.idx.as_ref().expect("idx_find needs the index");
            if let Some((pos, _)) = idx.find_in(offset + probe, offset + covered, mask) {
                let k = pos - offset;
                if k > self.max_token {
                    return Err(self.err_too_large());
                }
                return Ok(Scan::Hit(k));
            }
            if covered > self.max_token {
                return Err(self.err_too_large());
            }
            probe = covered;
        }
    }

    /// Next structural mark at relative offset ≥ `from` whose class bit
    /// is set in `mask`, extending the index as needed. `None` on end of
    /// input or once the walk leaves `max_token` — callers fall back to
    /// the scalar scan, which reproduces the corresponding error.
    fn next_mark(&mut self, from: usize, mask: u8) -> Option<(usize, u8)> {
        let mut probe = from;
        loop {
            let covered = self.index_cover(probe + 1);
            if covered <= probe {
                return None;
            }
            let offset = self.offset;
            let idx = self.idx.as_ref().expect("next_mark needs the index");
            if let Some((pos, class)) = idx.find_in(offset + probe, offset + covered, mask) {
                let rel = pos - offset;
                return (rel <= self.max_token).then_some((rel, class));
            }
            if covered > self.max_token {
                return None;
            }
            probe = covered;
        }
    }

    /// Relative offset of the unquoted `>` closing the tag at the
    /// cursor, hopping quoted spans mark-to-mark. `None` sends the tag
    /// to the scalar scan (end of input, an `&` or stray `<` before the
    /// close, an unterminated quote, or an oversized tag).
    fn tag_extent(&mut self, from: usize) -> Option<usize> {
        const WALK: u8 =
            simd::MASK_LT | simd::MASK_GT | simd::MASK_DQ | simd::MASK_SQ | simd::MASK_AMP;
        let mut i = from;
        loop {
            let (rel, class) = self.next_mark(i, WALK)?;
            match class {
                simd::CLASS_GT => return Some(rel),
                simd::CLASS_DQ | simd::CLASS_SQ => {
                    let (close, _) = self.next_mark(rel + 1, 1 << class)?;
                    i = close + 1;
                }
                _ => return None,
            }
        }
    }

    /// Relative offset of the first byte not satisfying `pred` (or end
    /// of input), growing the window as needed up to `max_token`.
    fn scan_while(&mut self, from: usize, pred: impl Fn(u8) -> bool) -> Result<usize, ParseError> {
        let mut i = from;
        loop {
            let w = self.src.window(i + 1);
            if w.len() <= i {
                return Ok(i);
            }
            if let Some(k) = w[i..].iter().position(|&b| !pred(b)) {
                if i + k > self.max_token {
                    return Err(self.err_too_large());
                }
                return Ok(i + k);
            }
            i = w.len();
            if i > self.max_token {
                return Err(self.err_too_large());
            }
        }
    }

    /// Validates that the visible bytes `[a, b)` are UTF-8. In indexed
    /// mode the common case is a watermark comparison — the bytes were
    /// validated in bulk when their chunk was classified.
    fn check_utf8(&mut self, a: usize, b: usize, what: &str) -> Result<(), ParseError> {
        if self.idx.is_some() {
            self.index_to_abs(self.offset + b);
            let idx = self.idx.as_ref().expect("check_utf8 needs the index");
            if self.offset + b <= idx.utf8_valid_to {
                return Ok(());
            }
            let frozen = idx
                .utf8_bad
                .filter(|bad| (self.offset + a..self.offset + b).contains(bad));
            if let Some(bad) = frozen {
                // Same byte the scalar scan would blame: valid_up_to of
                // a scan starting at `a` is exactly `bad - offset - a`.
                let at = bad - self.offset;
                return Err(self.err_at(at, what.to_owned()));
            }
            // Rare: the span reaches past the watermark (truncated char
            // at end of input) — fall through to the direct check.
        }
        let bad = {
            let w = self.src.window(b);
            match std::str::from_utf8(&w[a..b]) {
                Ok(_) => None,
                Err(e) => Some(a + e.valid_up_to()),
            }
        };
        match bad {
            None => Ok(()),
            Some(at) => Err(self.err_at(at, what.to_owned())),
        }
    }

    /// Validates and appends the visible bytes `[a, b)` to the text
    /// scratch.
    fn push_text_scratch(&mut self, a: usize, b: usize, what: &str) -> Result<(), ParseError> {
        self.check_utf8(a, b, what)?;
        let w = self.src.window(b);
        let s = str_from_checked(&w[a..b]);
        self.text_scratch.push_str(s);
        Ok(())
    }

    /// Validates and appends the visible bytes `[a, b)` to the
    /// attribute scratch.
    fn push_attr_scratch(&mut self, a: usize, b: usize) -> Result<(), ParseError> {
        self.check_utf8(a, b, "invalid UTF-8 sequence")?;
        let w = self.src.window(b);
        let s = str_from_checked(&w[a..b]);
        self.attr_scratch.push_str(s);
        Ok(())
    }

    // -- the pull loop ----------------------------------------------

    /// Pulls the next token. After [`XmlToken::EndDocument`], returns
    /// `EndDocument` forever. Pulling invalidates the previous token's
    /// borrows (enforced by the borrow checker).
    pub fn next_event(&mut self) -> Result<XmlToken<'_>, ParseError> {
        self.commit();
        match self.stage {
            Stage::Prolog => self.next_prolog(),
            Stage::Content => self.next_content(),
            Stage::Epilog => self.next_epilog(),
            Stage::Done => Ok(XmlToken::EndDocument),
        }
    }

    // -- the push loop (fused drive) ---------------------------------

    /// Pushes the entire document into `sink` and returns at end of
    /// document — the flattened counterpart of pulling [`Self::next_event`]
    /// in a loop.
    ///
    /// With the structural index active, the common content-stage cycle
    /// (start tag / end tag / plain text / comment / PI) is stepped
    /// directly off the [`StructIdx`] marks: no [`XmlToken`] is built, no
    /// `Position` is computed, end-tag names stay as [`NameId`]s, and
    /// text is materialized only to the degree the sink's
    /// [`TextInterest`] requires. Anything irregular — entities, CDATA
    /// (which coalesces with neighboring text), prolog/epilog tokens,
    /// oversized or malformed constructs, end of input — falls back to
    /// the token pull for exactly one event, which reproduces the
    /// scalar-visible behavior (and every error, at its exact position)
    /// by construction. Under [`Engine::Scalar`] the fused path is
    /// disabled and the drive is a plain token loop, so the differential
    /// suites pin both shapes.
    pub fn drive<K: EventSink>(&mut self, sink: &mut K) -> Result<(), ParseError> {
        // The sink's declared text interest per open element. The fused
        // and token paths push/pop it identically, so a mid-document
        // fallback sees a consistent stack.
        let mut interests: Vec<TextInterest> = Vec::with_capacity(16);
        loop {
            self.commit();
            // Fused fast path; on `false` (irregular construct at the
            // cursor) nothing was consumed and exactly one token is
            // pulled below instead.
            if self.stage == Stage::Content
                && self.pending_end.is_none()
                && self.idx.is_some()
                && self.drive_content(sink, &mut interests)?
            {
                continue;
            }
            let tok = match self.stage {
                Stage::Prolog => self.next_prolog()?,
                Stage::Content => self.next_content()?,
                Stage::Epilog => self.next_epilog()?,
                Stage::Done => XmlToken::EndDocument,
            };
            match tok {
                XmlToken::Doctype {
                    name,
                    internal_subset,
                } => sink.doctype(name, internal_subset),
                XmlToken::StartElement {
                    name,
                    name_id,
                    attributes,
                    self_closing,
                    ..
                } => {
                    // A self-closing tag still pushes an interest: its
                    // synthesized EndElement arrives as the very next
                    // token and pops it.
                    interests.push(sink.start_element(name, name_id, &attributes, self_closing));
                }
                XmlToken::EndElement { name, name_id, .. } => {
                    interests.pop();
                    sink.end_element(name.as_str(), name_id);
                }
                XmlToken::Text { text, .. } => {
                    let chunk = match interests.last() {
                        Some(TextInterest::NonWhitespace) => TextChunk::NonWs(has_non_ws(text)),
                        Some(TextInterest::Collect) => TextChunk::Collect(text),
                        _ => TextChunk::Skipped,
                    };
                    sink.text(chunk);
                }
                XmlToken::EndDocument => return Ok(()),
            }
        }
    }

    /// A run of fused steps at the content-stage cursor, dispatching on
    /// the raw bytes exactly as [`Self::next_content`] does. Runs until
    /// the cursor hits a construct the token path must handle, or the
    /// root closes. `Ok(false)` = the very first step bailed with
    /// nothing consumed, so the token path replays the same bytes;
    /// `Ok(true)` = progress was made (the caller re-enters and any
    /// leftover irregularity bails on its first step).
    fn drive_content<K: EventSink>(
        &mut self,
        sink: &mut K,
        interests: &mut Vec<TextInterest>,
    ) -> Result<bool, ParseError> {
        let mut any = false;
        loop {
            // One window grab covers both dispatch bytes.
            let w = self.src.window(2);
            let (b0, b1) = (w.first().copied(), w.get(1).copied());
            let stepped = match b0 {
                Some(b'<') => match b1 {
                    Some(b'/') => self.drive_end_tag(sink, interests),
                    Some(b'!') => {
                        if self.starts_with_at(0, "<!--") {
                            self.skip_comment()?;
                            true
                        } else {
                            // CDATA (coalesces with adjacent text) or
                            // junk like `<!DOCTYPE` here: token path.
                            false
                        }
                    }
                    Some(b'?') => {
                        self.skip_pi()?;
                        true
                    }
                    // A name start (fast case) or garbage/EOF — the
                    // indexed scan returns None on the latter and the
                    // token path reports the scalar error.
                    _ => self.drive_start_tag(sink, interests),
                },
                // `&` starts a spliced run; EOF errors. Both via tokens.
                Some(b'&') | None => false,
                Some(_) => self.drive_text(sink, interests)?,
            };
            if !stepped {
                return Ok(any);
            }
            any = true;
            // The fused paths consume immediately (`pending` stays 0)
            // and never set `pending_end`, so the only loop condition to
            // re-check is the stage: a root-closing end tag moves it to
            // Epilog.
            if self.stage != Stage::Content {
                return Ok(true);
            }
        }
    }

    /// Fused start tag: the indexed scan resolves the whole tag, the
    /// sink is called on the borrowed attribute list, and only then are
    /// the bytes consumed (no deferred-pending state, no `Position`).
    fn drive_start_tag<K: EventSink>(
        &mut self,
        sink: &mut K,
        interests: &mut Vec<TextInterest>,
    ) -> bool {
        let Some((tag_len, name_id, self_closing)) = self.scan_start_tag_indexed() else {
            return false;
        };
        {
            let XmlReader {
                src,
                names,
                attr_spans,
                attr_scratch,
                ..
            } = self;
            let w = src.window(tag_len);
            let attributes = AttrList {
                spans: attr_spans.as_slice(),
                tag: &w[..tag_len],
                scratch: attr_scratch.as_str(),
            };
            interests.push(sink.start_element(
                names.get(name_id),
                name_id,
                &attributes,
                self_closing,
            ));
        }
        // The sink holds no borrows past the call, so the bytes are
        // consumed immediately (consuming first could compact an IoSrc
        // window out from under the attribute slices).
        self.consume_now(tag_len);
        if self_closing {
            // No pending_end bookkeeping: the matching end event is
            // delivered right here.
            interests.pop();
            sink.end_element(self.names.get(name_id), name_id);
        } else {
            self.open.push(name_id);
        }
        true
    }

    /// Fused end tag: the indexed scan byte-compares the tag against the
    /// innermost open name; on a match the event is one `NameId` — no
    /// token, no position, no name-string resolution.
    fn drive_end_tag<K: EventSink>(
        &mut self,
        sink: &mut K,
        interests: &mut Vec<TextInterest>,
    ) -> bool {
        let expected = *self.open.last().expect("content stage has an open element");
        let Some(tag_len) = self.scan_end_tag_indexed(expected) else {
            return false;
        };
        self.consume_now(tag_len);
        self.open.pop();
        if self.open.is_empty() {
            self.stage = Stage::Epilog;
        }
        interests.pop();
        sink.end_element(self.names.get(expected), expected);
        true
    }

    /// Fused text run: one mark lookup finds the run's end; the payload
    /// is materialized only to the enclosing element's [`TextInterest`].
    /// Runs that splice (an `&` inside, or a comment/PI/CDATA boundary
    /// that coalesces with what follows) go through the token path —
    /// same checks, in the same order, as [`Self::read_text`].
    fn drive_text<K: EventSink>(
        &mut self,
        sink: &mut K,
        interests: &mut [TextInterest],
    ) -> Result<bool, ParseError> {
        let Some((k, class)) = self.next_mark(0, simd::MASK_LT | simd::MASK_AMP) else {
            return Ok(false); // EOF or oversized run: scalar error
        };
        if class != simd::CLASS_LT {
            return Ok(false); // `&`: splice via the scratch path
        }
        debug_assert!(k > 0, "cursor byte dispatches elsewhere");
        // The run coalesces across a following comment/CDATA/PI — the
        // token path's scratch accumulator handles those. One byte
        // distinguishes the common case (a tag) from the candidates.
        match self.at(k + 1) {
            Some(b'?') => return Ok(false),
            Some(b'!') if self.starts_with_at(k, "<!--") || self.starts_with_at(k, "<![CDATA[") => {
                return Ok(false);
            }
            _ => {}
        }
        self.check_utf8(0, k, "invalid UTF-8 sequence")?;
        let chunk = {
            let w = self.src.window(k);
            match interests.last() {
                Some(TextInterest::NonWhitespace) => {
                    TextChunk::NonWs(has_non_ws(str_from_checked(&w[..k])))
                }
                Some(TextInterest::Collect) => TextChunk::Collect(str_from_checked(&w[..k])),
                _ => TextChunk::Skipped,
            }
        };
        sink.text(chunk);
        self.consume_now(k);
        Ok(true)
    }

    fn next_prolog(&mut self) -> Result<XmlToken<'_>, ParseError> {
        loop {
            self.skip_ws()?;
            if self.starts_with_at(0, "<?") {
                self.skip_pi()?;
            } else if self.starts_with_at(0, "<!--") {
                self.skip_comment()?;
            } else if self.starts_with_at(0, "<!DOCTYPE") {
                let (name, subset) = self.parse_doctype()?;
                self.doctype_name = name;
                self.doctype_subset = subset;
                return Ok(XmlToken::Doctype {
                    name: &self.doctype_name,
                    internal_subset: self.doctype_subset.as_deref(),
                });
            } else if self.at(0) == Some(b'<') {
                self.stage = Stage::Content;
                return self.read_start_tag();
            } else {
                return Err(self.err("expected root element"));
            }
        }
    }

    fn next_content(&mut self) -> Result<XmlToken<'_>, ParseError> {
        if let Some((id, position)) = self.pending_end.take() {
            if self.open.is_empty() {
                self.stage = Stage::Epilog;
            }
            return Ok(XmlToken::EndElement {
                name: LazyName {
                    pool: &self.names,
                    id,
                },
                name_id: id,
                position,
            });
        }
        loop {
            match self.at(0) {
                None => return Err(self.err_eof_in_content(0)),
                Some(b'<') => match self.at(1) {
                    Some(b'/') => return self.read_end_tag(),
                    Some(b'!') => {
                        if self.starts_with_at(0, "<!--") {
                            self.skip_comment()?;
                        } else if self.starts_with_at(0, "<![CDATA[") {
                            let position = self.position();
                            return self.read_text_slow(0, position);
                        } else {
                            // e.g. `<!DOCTYPE` in content: read_start_tag
                            // reports "expected name", as before.
                            return self.read_start_tag();
                        }
                    }
                    Some(b'?') => self.skip_pi()?,
                    _ => return self.read_start_tag(),
                },
                Some(b'&') => {
                    let position = self.position();
                    return self.read_text_slow(0, position);
                }
                Some(_) => return self.read_text(),
            }
        }
    }

    fn next_epilog(&mut self) -> Result<XmlToken<'_>, ParseError> {
        loop {
            self.skip_ws()?;
            if self.starts_with_at(0, "<?") {
                self.skip_pi()?;
            } else if self.starts_with_at(0, "<!--") {
                self.skip_comment()?;
            } else if self.at(0).is_some() {
                return Err(self.err("unexpected content after root element"));
            } else {
                self.stage = Stage::Done;
                return Ok(XmlToken::EndDocument);
            }
        }
    }

    /// "unexpected end of input in <…>" positioned at relative offset
    /// `i` (the old byte-at-a-time reader erred at the cursor, which by
    /// then sat at end of input).
    fn err_eof_in_content(&mut self, i: usize) -> ParseError {
        let name = self
            .open
            .last()
            .map(|&id| self.names.get(id).to_owned())
            .unwrap_or_default();
        self.err_at(i, format!("unexpected end of input in <{name}>"))
    }

    fn skip_ws(&mut self) -> Result<(), ParseError> {
        let k = self.scan_while(0, |c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))?;
        if k > 0 {
            self.consume_now(k);
        }
        Ok(())
    }

    // -- text --------------------------------------------------------

    /// Fast path for a character-data run: one SWAR scan to the next
    /// `<`/`&`; if the run ends at a real tag, the token borrows the
    /// source window directly — zero copies, one UTF-8 validation.
    fn read_text(&mut self) -> Result<XmlToken<'_>, ParseError> {
        let position = self.position();
        match self.find2(0, b'<', b'&')? {
            Scan::Eof(e) => Err(self.err_eof_in_content(e)),
            Scan::Hit(k) => {
                debug_assert!(k > 0, "caller dispatches '<'/'&' elsewhere");
                if self.at(k) == Some(b'&')
                    || self.starts_with_at(k, "<!--")
                    || self.starts_with_at(k, "<![CDATA[")
                    || self.starts_with_at(k, "<?")
                {
                    // Splicing or decoding needed: fall back to the
                    // scratch accumulator, seeded with this prefix.
                    return self.read_text_slow(k, position);
                }
                self.check_utf8(0, k, "invalid UTF-8 sequence")?;
                self.defer_consume(k);
                let w = self.src.window(k);
                let text = str_from_checked(&w[..k]);
                Ok(XmlToken::Text { text, position })
            }
        }
    }

    /// Slow path: accumulates a coalesced run (entity expansions, CDATA
    /// sections, comment/PI splicing) into the scratch buffer. `prefix`
    /// bytes of plain text at the cursor are consumed into the run
    /// first; `position` is where that prefix began. While the run is
    /// still empty, the position re-anchors at each contributing
    /// construct — exactly how the old reader tracked `text_pos` (an
    /// empty CDATA section or empty entity expansion does not pin the
    /// run's position).
    fn read_text_slow(
        &mut self,
        prefix: usize,
        mut position: Position,
    ) -> Result<XmlToken<'_>, ParseError> {
        self.text_scratch.clear();
        if prefix > 0 {
            self.push_text_scratch(0, prefix, "invalid UTF-8 sequence")?;
            self.consume_now(prefix);
        }
        loop {
            match self.at(0) {
                None => return Err(self.err_eof_in_content(0)),
                Some(b'<') => {
                    if self.starts_with_at(0, "<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with_at(0, "<![CDATA[") {
                        if self.text_scratch.is_empty() {
                            position = self.position();
                        }
                        self.read_cdata()?;
                    } else if self.starts_with_at(0, "<?") {
                        self.skip_pi()?;
                    } else if !self.text_scratch.is_empty() {
                        // A real tag follows: flush the coalesced run,
                        // leaving the cursor on the `<`.
                        break;
                    } else if self.starts_with_at(0, "</") {
                        // Empty run (e.g. only an empty CDATA section):
                        // no text token, read the tag directly.
                        return self.read_end_tag();
                    } else {
                        return self.read_start_tag();
                    }
                }
                Some(b'&') => {
                    if self.text_scratch.is_empty() {
                        position = self.position();
                    }
                    let (next, exp) = self.scan_entity(0)?;
                    self.consume_now(next);
                    match exp {
                        Expanded::Ch(c) => self.text_scratch.push(c),
                        Expanded::Pre(s) => self.text_scratch.push_str(s),
                        Expanded::Owned(s) => self.text_scratch.push_str(&s),
                    }
                }
                Some(_) => {
                    if self.text_scratch.is_empty() {
                        position = self.position();
                    }
                    let end = match self.find2(0, b'<', b'&')? {
                        Scan::Hit(k) => k,
                        Scan::Eof(e) => e,
                    };
                    self.push_text_scratch(0, end, "invalid UTF-8 sequence")?;
                    self.consume_now(end);
                }
            }
        }
        Ok(XmlToken::Text {
            text: &self.text_scratch,
            position,
        })
    }

    /// Consumes a `<![CDATA[…]]>` section into the text scratch.
    fn read_cdata(&mut self) -> Result<(), ParseError> {
        let mut i = 9; // past "<![CDATA["
        loop {
            match self.find_byte(i, b']')? {
                Scan::Eof(e) => return Err(self.err_at(e, "unterminated CDATA section")),
                Scan::Hit(k) => {
                    if self.starts_with_at(k, "]]>") {
                        self.push_text_scratch(9, k, "invalid UTF-8 in CDATA")?;
                        self.consume_now(k + 3);
                        return Ok(());
                    }
                    i = k + 1;
                }
            }
        }
    }

    /// Relative offset one past the `>` terminating a construct that
    /// ends in `suffix` + `>` (comments: `--`, PIs: `?`), hopping the
    /// index's `>` marks instead of scanning every body byte. The first
    /// `>` mark preceded by the suffix is the first occurrence of the
    /// terminator, so this finds exactly what the scalar loop finds.
    /// `None` (no index, end of input, or an oversized construct) sends
    /// the caller back to the scalar loop, which reproduces the exact
    /// scalar error at its exact position.
    fn find_gt_ending(&mut self, min_start: usize, suffix: &[u8]) -> Option<usize> {
        self.idx.as_ref()?;
        let mut i = min_start + suffix.len();
        loop {
            let (k, _) = self.next_mark(i, simd::MASK_GT)?;
            let w = self.src.window(k + 1);
            if &w[k - suffix.len()..k] == suffix {
                return Some(k + 1);
            }
            i = k + 1;
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        if let Some(end) = self.find_gt_ending(4, b"--") {
            self.consume_now(end);
            return Ok(());
        }
        let mut i = 4; // past "<!--"
        loop {
            match self.find_byte(i, b'-')? {
                Scan::Eof(e) => return Err(self.err_at(e, "unterminated comment")),
                Scan::Hit(k) => {
                    if self.starts_with_at(k, "-->") {
                        self.consume_now(k + 3);
                        return Ok(());
                    }
                    i = k + 1;
                }
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        if let Some(end) = self.find_gt_ending(2, b"?") {
            self.consume_now(end);
            return Ok(());
        }
        let mut i = 2; // past "<?"
        loop {
            match self.find_byte(i, b'?')? {
                Scan::Eof(e) => return Err(self.err_at(e, "unterminated processing instruction")),
                Scan::Hit(k) => {
                    if self.starts_with_at(k, "?>") {
                        self.consume_now(k + 2);
                        return Ok(());
                    }
                    i = k + 1;
                }
            }
        }
    }

    // -- tags --------------------------------------------------------

    /// Lexes `<name attr="v" …>` / `<name …/>` at the cursor into a
    /// borrowed token. The whole tag is scanned without consuming, the
    /// attribute name/value spans recorded, and only then is the tag
    /// length deferred-consumed so the returned slices stay put.
    ///
    /// Indexed mode first tries [`Self::scan_start_tag_indexed`]: resolve
    /// the tag extent from the structural marks, then parse the complete
    /// materialized slice in one tight pass. Any irregularity bails to
    /// the scalar scan of the same bytes, which reproduces the exact
    /// scalar error.
    fn read_start_tag(&mut self) -> Result<XmlToken<'_>, ParseError> {
        let position = self.position();
        debug_assert_eq!(self.at(0), Some(b'<'));
        let fast = if self.idx.is_some() {
            self.scan_start_tag_indexed()
        } else {
            None
        };
        let (tag_len, name_id, self_closing) = match fast {
            Some(t) => t,
            None => self.scan_start_tag_scalar()?,
        };
        self.defer_consume(tag_len);
        if self_closing {
            self.pending_end = Some((name_id, self.position()));
        } else {
            self.open.push(name_id);
        }
        let w = self.src.window(tag_len);
        Ok(XmlToken::StartElement {
            name: self.names.get(name_id),
            name_id,
            attributes: AttrList {
                spans: &self.attr_spans,
                tag: &w[..tag_len],
                scratch: &self.attr_scratch,
            },
            self_closing,
            position,
        })
    }

    /// The scalar start-tag scan: cursor-relative probing with window
    /// refills, entity expansion in attribute values, and positioned
    /// errors. Returns `(tag_len, name_id, self_closing)`.
    fn scan_start_tag_scalar(&mut self) -> Result<(usize, NameId, bool), ParseError> {
        match self.at(1) {
            Some(c) if is_name_start(c) => {}
            _ => return Err(self.err_at(1, "expected name")),
        }
        let name_end = self.scan_while(2, is_name_char)?;
        let name_id = {
            let w = self.src.window(name_end);
            self.names.intern(&w[1..name_end])
        };
        let Some(name_id) = name_id else {
            return Err(self.err_at(1, "invalid UTF-8 in name"));
        };
        self.attr_spans.clear();
        self.attr_scratch.clear();
        let mut i = name_end;
        loop {
            i = self.scan_while(i, |c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))?;
            match self.at(i) {
                Some(b'>') => return Ok((i + 1, name_id, false)),
                Some(b'/') if self.at(i + 1) == Some(b'>') => return Ok((i + 2, name_id, true)),
                Some(b'/') | None => return Err(self.err_at(i, "expected \">\"")),
                Some(c) if is_name_start(c) => i = self.scan_attribute(i)?,
                Some(_) => return Err(self.err_at(i, "expected name")),
            }
        }
    }

    /// The indexed start-tag scan: one walk over the structural marks,
    /// parsing the byte runs between them (names, whitespace, `=`) in
    /// place and recording attribute spans as each closing quote mark is
    /// reached — the attribute values themselves are never re-scanned.
    /// `None` = use the scalar scan instead: end of input or oversized
    /// tag (no unquoted `>` mark in range), an entity reference or stray
    /// `<` in a value, any malformation, a duplicate attribute, or a tag
    /// reaching past the UTF-8 watermark. Indexed scans construct no
    /// errors — re-scanning the same bytes scalar-side is deterministic,
    /// so the error behavior of the two engines is identical by
    /// construction.
    fn scan_start_tag_indexed(&mut self) -> Option<(usize, NameId, bool)> {
        const WALK: u8 =
            simd::MASK_LT | simd::MASK_GT | simd::MASK_DQ | simd::MASK_SQ | simd::MASK_AMP;
        const WS: [u8; 4] = [b' ', b'\t', b'\r', b'\n'];
        let (mut rel, mut class) = self.next_mark(1, WALK)?;
        // Attribute-free tags (first mark = the closing `>`): probe the
        // tag cache before scanning. A hit is exact — byte-identical
        // tags scan to byte-identical results (the name pool only
        // grows, so the interned id is stable), and a cached tag
        // already proved its bytes scan cleanly, so the scalar path
        // would accept them too.
        if class == simd::CLASS_GT && rel < TAG_CACHE_BYTES {
            let tag_len = rel + 1;
            let w = self.src.window(tag_len);
            let e = &self.tag_cache[tag_cache_slot(w[1], tag_len)];
            if e.len as usize == tag_len && e.bytes[..tag_len] == w[..tag_len] {
                let (name_id, self_closing) = (e.name_id, e.self_closing);
                self.attr_spans.clear();
                self.attr_scratch.clear();
                return Some((tag_len, name_id, self_closing));
            }
        }
        self.attr_spans.clear();
        self.attr_scratch.clear();
        // Element name: no structural mark can sit inside a name, so the
        // bytes up to the first mark cover it. The window reaches the
        // mark because the index only records visible bytes.
        let name_end = {
            let w = self.src.window(rel + 1);
            if !is_name_start(w[1]) {
                return None;
            }
            let mut i = 2;
            while i < rel && is_name_char(w[i]) {
                i += 1;
            }
            i
        };
        let mut cursor = name_end;
        loop {
            match class {
                simd::CLASS_GT => {
                    // `[ws] >` or `[ws] />` closes the tag.
                    let tag_len = rel + 1;
                    let self_closing = {
                        let w = self.src.window(tag_len);
                        let mut i = cursor;
                        while i < rel && WS.contains(&w[i]) {
                            i += 1;
                        }
                        match rel - i {
                            0 => false,
                            1 if w[i] == b'/' => true,
                            _ => return None,
                        }
                    };
                    if self.offset + tag_len > self.idx.as_ref()?.utf8_valid_to {
                        return None;
                    }
                    let XmlReader {
                        src,
                        names,
                        tag_cache,
                        attr_spans,
                        ..
                    } = self;
                    let w = src.window(tag_len);
                    let name_id = names
                        .intern(&w[1..name_end])
                        .expect("tag bytes are inside the validated UTF-8 watermark");
                    if attr_spans.is_empty() && tag_len <= TAG_CACHE_BYTES {
                        let e = &mut tag_cache[tag_cache_slot(w[1], tag_len)];
                        e.len = tag_len as u8;
                        e.self_closing = self_closing;
                        e.name_id = name_id;
                        e.bytes[..tag_len].copy_from_slice(&w[..tag_len]);
                    }
                    return Some((tag_len, name_id, self_closing));
                }
                simd::CLASS_DQ | simd::CLASS_SQ => {
                    // `[ws] name [ws] = [ws]` must fill the gap up to
                    // this opening quote.
                    let (a_start, a_end) = {
                        let w = self.src.window(rel + 1);
                        let mut i = cursor;
                        while i < rel && WS.contains(&w[i]) {
                            i += 1;
                        }
                        if i >= rel || !is_name_start(w[i]) {
                            return None;
                        }
                        let a_start = i;
                        i += 1;
                        while i < rel && is_name_char(w[i]) {
                            i += 1;
                        }
                        let a_end = i;
                        while i < rel && WS.contains(&w[i]) {
                            i += 1;
                        }
                        if i >= rel || w[i] != b'=' {
                            return None;
                        }
                        i += 1;
                        while i < rel && WS.contains(&w[i]) {
                            i += 1;
                        }
                        if i != rel {
                            return None;
                        }
                        (a_start, a_end)
                    };
                    // The value runs to the next same-class quote mark.
                    // An `&` (entity to splice) or `<` (error) mark
                    // first routes to the scalar scan; `>` and the other
                    // quote are legal value bytes and excluded from the
                    // stop mask, so they are hopped for free.
                    let stop = (1 << class) | simd::MASK_LT | simd::MASK_AMP;
                    let (close, cclass) = self.next_mark(rel + 1, stop)?;
                    if cclass != class {
                        return None;
                    }
                    let XmlReader {
                        src, attr_spans, ..
                    } = self;
                    let w = src.window(close + 1);
                    let name = &w[a_start..a_end];
                    if attr_spans
                        .iter()
                        .any(|sp| &w[sp.name_start as usize..sp.name_end as usize] == name)
                    {
                        return None;
                    }
                    attr_spans.push(AttrSpan {
                        name_start: a_start as u32,
                        name_end: a_end as u32,
                        val_start: (rel + 1) as u32,
                        val_end: close as u32,
                        val_in_scratch: false,
                    });
                    cursor = close + 1;
                    (rel, class) = self.next_mark(cursor, WALK)?;
                }
                // `&` or a stray `<` inside the tag: scalar errors.
                _ => return None,
            }
        }
    }

    /// Scans one `name = "value"` at relative offset `start`, recording
    /// its spans; returns the offset just past the closing quote.
    fn scan_attribute(&mut self, start: usize) -> Result<usize, ParseError> {
        let name_end = self.scan_while(start + 1, is_name_char)?;
        self.check_utf8(start, name_end, "invalid UTF-8 in name")?;
        let mut i = self.scan_while(name_end, |c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))?;
        if self.at(i) != Some(b'=') {
            return Err(self.err_at(i, "expected \"=\""));
        }
        i = self.scan_while(i + 1, |c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))?;
        let quote = match self.at(i) {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err_at(i, "expected quoted attribute value")),
        };
        i += 1;
        let val_start = i;
        // Fast case: the value contains no entity reference and is used
        // as a raw tag span; `&` switches to decoding into the scratch.
        let mut scratch_from: Option<u32> = None;
        let mut seg_start = i;
        let (val, end) = loop {
            match self.find3(i, quote, b'&', b'<')? {
                Scan::Eof(e) => return Err(self.err_at(e, "unterminated attribute value")),
                Scan::Hit(k) => {
                    let found = self.at(k).expect("hit is in bounds");
                    if found == b'<' {
                        return Err(self.err_at(k, "'<' not allowed in attribute value"));
                    }
                    if found == quote {
                        match scratch_from {
                            None => {
                                self.check_utf8(val_start, k, "invalid UTF-8 sequence")?;
                                break ((val_start as u32, k as u32, false), k + 1);
                            }
                            Some(from) => {
                                self.push_attr_scratch(seg_start, k)?;
                                break ((from, self.attr_scratch.len() as u32, true), k + 1);
                            }
                        }
                    }
                    // `&`: flush the raw segment, splice the expansion.
                    if scratch_from.is_none() {
                        scratch_from = Some(self.attr_scratch.len() as u32);
                    }
                    self.push_attr_scratch(seg_start, k)?;
                    let (next, exp) = self.scan_entity(k)?;
                    match exp {
                        Expanded::Ch(c) => self.attr_scratch.push(c),
                        Expanded::Pre(s) => self.attr_scratch.push_str(s),
                        Expanded::Owned(s) => self.attr_scratch.push_str(&s),
                    }
                    seg_start = next;
                    i = next;
                }
            }
        };
        // Duplicate check against earlier attribute names (byte-wise;
        // names live in the raw tag span).
        let duplicate = {
            let w = self.src.window(name_end);
            let name = &w[start..name_end];
            self.attr_spans
                .iter()
                .any(|sp| &w[sp.name_start as usize..sp.name_end as usize] == name)
        };
        if duplicate {
            let name = {
                let w = self.src.window(name_end);
                String::from_utf8_lossy(&w[start..name_end]).into_owned()
            };
            return Err(self.err_at(end, format!("duplicate attribute {name:?}")));
        }
        let (val_start, val_end, val_in_scratch) = val;
        self.attr_spans.push(AttrSpan {
            name_start: start as u32,
            name_end: name_end as u32,
            val_start,
            val_end,
            val_in_scratch,
        });
        Ok(end)
    }

    fn read_end_tag(&mut self) -> Result<XmlToken<'_>, ParseError> {
        let position = self.position();
        debug_assert!(self.starts_with_at(0, "</"));
        let expected = *self.open.last().expect("content stage has an open element");
        let fast = if self.idx.is_some() {
            self.scan_end_tag_indexed(expected)
        } else {
            None
        };
        let tag_len = match fast {
            Some(len) => len,
            None => self.scan_end_tag_scalar(expected)?,
        };
        self.defer_consume(tag_len);
        self.open.pop();
        if self.open.is_empty() {
            self.stage = Stage::Epilog;
        }
        Ok(XmlToken::EndElement {
            name: LazyName {
                pool: &self.names,
                id: expected,
            },
            name_id: expected,
            position,
        })
    }

    /// The scalar end-tag scan; returns the tag length on a match with
    /// `expected` (anything else is a positioned error).
    fn scan_end_tag_scalar(&mut self, expected: NameId) -> Result<usize, ParseError> {
        match self.at(2) {
            Some(c) if is_name_start(c) => {}
            _ => return Err(self.err_at(2, "expected name")),
        }
        let name_end = self.scan_while(3, is_name_char)?;
        let id = {
            let w = self.src.window(name_end);
            self.names.intern(&w[2..name_end])
        };
        let Some(id) = id else {
            return Err(self.err_at(2, "invalid UTF-8 in name"));
        };
        if id != expected {
            let close = self.names.get(id).to_owned();
            let exp = self.names.get(expected).to_owned();
            return Err(self.err_at(
                name_end,
                format!("mismatched close tag: expected </{exp}>, found </{close}>"),
            ));
        }
        let i = self.scan_while(name_end, |c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))?;
        if self.at(i) != Some(b'>') {
            return Err(self.err_at(i, "expected \">\""));
        }
        Ok(i + 1)
    }

    /// The indexed end-tag scan: byte-compares the materialized tag
    /// against `</expected␣*>` without interning. `None` (mismatch of
    /// any kind, or the tag is out of index range) goes back through the
    /// scalar scan for its exact error; a genuine mismatched close tag
    /// always errors there, so skipping the intern is unobservable.
    fn scan_end_tag_indexed(&mut self, expected: NameId) -> Option<usize> {
        let extent = self.tag_extent(2)?;
        let tag_len = extent + 1;
        if self.offset + tag_len > self.idx.as_ref()?.utf8_valid_to {
            return None;
        }
        let XmlReader { src, names, .. } = self;
        let w = src.window(tag_len);
        parse_end_tag_slice(&w[..tag_len], names.get(expected).as_bytes()).then_some(tag_len)
    }

    // -- entities (cold path) ---------------------------------------

    /// Resolves `&…;` at relative offset `i0` without consuming: returns
    /// the offset just past the `;` and the decoded expansion. Character
    /// references are validated against the XML `Char` production;
    /// general entities are expanded recursively with depth/size guards.
    fn scan_entity(&mut self, i0: usize) -> Result<(usize, Expanded), ParseError> {
        debug_assert_eq!(self.at(i0), Some(b'&'));
        let mut i = i0 + 1;
        if self.at(i) == Some(b'#') {
            i += 1;
            let (radix, digit): (u32, fn(u8) -> bool) = if self.at(i) == Some(b'x') {
                i += 1;
                (16, |c: u8| c.is_ascii_hexdigit())
            } else {
                (10, |c: u8| c.is_ascii_digit())
            };
            let digits_start = i;
            i = self.scan_while(i, digit)?;
            if i == digits_start {
                return Err(self.err_at(i, "empty character reference"));
            }
            if self.at(i) != Some(b';') {
                return Err(self.err_at(i, "expected \";\""));
            }
            let pos = self.position_at(i0);
            let decoded = {
                let w = self.src.window(i);
                let digits = std::str::from_utf8(&w[digits_start..i]).expect("ASCII digits");
                decode_char_ref(digits, radix)
            };
            let ch = decoded.map_err(|msg| ParseError::new(pos, msg))?;
            return Ok((i + 1, Expanded::Ch(ch)));
        }
        match self.at(i) {
            Some(c) if is_name_start(c) => {}
            _ => return Err(self.err_at(i, "expected name")),
        }
        let name_end = self.scan_while(i + 1, is_name_char)?;
        if self.at(name_end) != Some(b';') {
            return Err(self.err_at(name_end, "expected \";\""));
        }
        let name = {
            let w = self.src.window(name_end);
            match std::str::from_utf8(&w[i..name_end]) {
                Ok(s) => s.to_owned(),
                Err(_) => return Err(self.err_at(i, "invalid UTF-8 in name")),
            }
        };
        if let Some(predef) = predefined_entity(&name) {
            return Ok((name_end + 1, Expanded::Pre(predef)));
        }
        let pos = self.position_at(i0);
        let out = self.expand_entity(&name, pos)?;
        Ok((name_end + 1, Expanded::Owned(out)))
    }

    /// Fully expands general entity `name`, resolving nested references
    /// in its replacement text. Memoized per entity.
    fn expand_entity(&mut self, name: &str, pos: Position) -> Result<String, ParseError> {
        if let Some(v) = self.expanded.get(name) {
            return Ok(v.clone());
        }
        if !self.entities.contains_key(name) {
            return Err(ParseError::new(pos, format!("undeclared entity &{name};")));
        }
        let mut active: Vec<&str> = Vec::new();
        let mut produced = 0usize;
        let out = expand_rec(&self.entities, name, &mut active, &mut produced, pos)?;
        self.expanded.insert(name.to_owned(), out.clone());
        Ok(out)
    }

    // -- DOCTYPE (cold path, byte-at-a-time like the old reader) -----

    #[inline]
    fn peek(&mut self) -> Option<u8> {
        self.at(0)
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.src.advance(1);
        self.offset += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.offset;
        }
        Some(c)
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with_at(0, s) {
            self.consume_now(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn parse_name_owned(&mut self) -> Result<String, ParseError> {
        match self.at(0) {
            Some(c) if is_name_start(c) => {}
            _ => return Err(self.err("expected name")),
        }
        let end = self.scan_while(1, is_name_char)?;
        let name = {
            let w = self.src.window(end);
            match std::str::from_utf8(&w[..end]) {
                Ok(s) => Ok(s.to_owned()),
                Err(_) => Err(()),
            }
        };
        match name {
            Ok(s) => {
                self.consume_now(end);
                Ok(s)
            }
            Err(()) => Err(self.err("invalid UTF-8 in name")),
        }
    }

    /// Parses a quoted literal (DOCTYPE external ids), consuming it.
    fn parse_quoted_owned(&mut self) -> Result<String, ParseError> {
        let quote = match self.at(0) {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.consume_now(1);
        let mut out = String::new();
        loop {
            match self.at(0) {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.consume_now(1);
                    return Ok(out);
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    let (next, exp) = self.scan_entity(0)?;
                    self.consume_now(next);
                    match exp {
                        Expanded::Ch(c) => out.push(c),
                        Expanded::Pre(s) => out.push_str(s),
                        Expanded::Owned(s) => out.push_str(&s),
                    }
                }
                Some(_) => {
                    let end = match self.find3(0, quote, b'&', b'<')? {
                        Scan::Hit(k) => k,
                        Scan::Eof(e) => e,
                    };
                    let seg = {
                        let w = self.src.window(end);
                        match std::str::from_utf8(&w[..end]) {
                            Ok(s) => Ok(s.to_owned()),
                            Err(_) => Err(()),
                        }
                    };
                    match seg {
                        Ok(s) => {
                            out.push_str(&s);
                            self.consume_now(end);
                        }
                        Err(()) => return Err(self.err("invalid UTF-8 sequence")),
                    }
                }
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<(String, Option<String>), ParseError> {
        self.expect_str("<!DOCTYPE")?;
        self.skip_ws()?;
        let name = self.parse_name_owned()?;
        self.skip_ws()?;
        // Optional external ID (SYSTEM/PUBLIC) — recorded but not fetched.
        if self.starts_with_at(0, "SYSTEM") {
            self.expect_str("SYSTEM")?;
            self.skip_ws()?;
            self.parse_quoted_owned()?;
            self.skip_ws()?;
        } else if self.starts_with_at(0, "PUBLIC") {
            self.expect_str("PUBLIC")?;
            self.skip_ws()?;
            self.parse_quoted_owned()?;
            self.skip_ws()?;
            self.parse_quoted_owned()?;
            self.skip_ws()?;
        }
        let mut subset = None;
        if self.peek() == Some(b'[') {
            self.bump();
            let subset_pos = self.position();
            let mut raw = Vec::new();
            let mut depth = 0usize;
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated DOCTYPE internal subset")),
                    Some(b'<') => {
                        depth += 1;
                        raw.push(b'<');
                        self.bump();
                    }
                    Some(b'>') => {
                        depth = depth.saturating_sub(1);
                        raw.push(b'>');
                        self.bump();
                    }
                    Some(b']') if depth == 0 => {
                        self.bump();
                        break;
                    }
                    Some(c) => {
                        raw.push(c);
                        self.bump();
                    }
                }
            }
            let text = String::from_utf8(raw).map_err(|_| self.err("invalid UTF-8 in DTD"))?;
            self.load_entities(&text, subset_pos)?;
            subset = Some(text);
            self.skip_ws()?;
        }
        self.expect_str(">")?;
        Ok((name, subset))
    }

    /// Extracts general-entity declarations from the internal subset. A
    /// malformed subset is a parse error of the document — reported with
    /// its position inside the subset — not a silent loss of all
    /// declarations.
    fn load_entities(&mut self, subset: &str, subset_pos: Position) -> Result<(), ParseError> {
        match crate::dtd::parser::parse_dtd(subset) {
            Ok(dtd) => {
                for (name, value) in dtd.general_entities {
                    self.entities.insert(name, value);
                }
                Ok(())
            }
            Err(e) => {
                // Translate the subset-relative position to the document.
                let position = Position {
                    line: subset_pos.line + e.position.line - 1,
                    column: if e.position.line == 1 {
                        subset_pos.column + e.position.column - 1
                    } else {
                        e.position.column
                    },
                    offset: subset_pos.offset + e.position.offset,
                };
                Err(ParseError::new(
                    position,
                    format!("in DTD internal subset: {}", e.message),
                ))
            }
        }
    }
}

/// Expands entity `name` from `entities`, resolving nested general-entity
/// and character references in replacement text. `active` detects cycles,
/// `produced` bounds total output across the whole expansion.
pub(crate) fn expand_rec<'e>(
    entities: &'e BTreeMap<String, String>,
    name: &'e str,
    active: &mut Vec<&'e str>,
    produced: &mut usize,
    pos: Position,
) -> Result<String, ParseError> {
    if active.contains(&name) {
        return Err(ParseError::new(
            pos,
            format!("recursive reference to entity &{name};"),
        ));
    }
    if active.len() >= MAX_ENTITY_DEPTH {
        return Err(ParseError::new(
            pos,
            format!("entity references nested more than {MAX_ENTITY_DEPTH} levels deep"),
        ));
    }
    let Some(raw) = entities.get(name) else {
        return Err(ParseError::new(pos, format!("undeclared entity &{name};")));
    };
    active.push(name);
    let mut out = String::new();
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the run up to the next reference verbatim.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&raw[start..i]);
            *produced += i - start;
        } else {
            let Some(semi) = raw[i..].find(';').map(|k| i + k) else {
                return Err(ParseError::new(
                    pos,
                    format!("malformed reference in entity &{name}; value"),
                ));
            };
            let inner = &raw[i + 1..semi];
            if let Some(digits) = inner.strip_prefix('#') {
                let (digits, radix) = match digits.strip_prefix('x') {
                    Some(hex) => (hex, 16),
                    None => (digits, 10),
                };
                let ch = decode_char_ref(digits, radix).map_err(|msg| ParseError::new(pos, msg))?;
                out.push(ch);
                *produced += ch.len_utf8();
            } else if let Some(predef) = predefined_entity(inner) {
                out.push_str(predef);
                *produced += predef.len();
            } else {
                // Nested expansions account for their own bytes.
                let nested = expand_rec(entities, inner, active, produced, pos)?;
                out.push_str(&nested);
            }
            i = semi + 1;
        }
        if *produced > MAX_ENTITY_EXPANSION {
            return Err(ParseError::new(
                pos,
                format!("entity &{name}; expands to more than {MAX_ENTITY_EXPANSION} bytes"),
            ));
        }
    }
    active.pop();
    Ok(out)
}

/// The five predefined entities.
pub(crate) fn predefined_entity(name: &str) -> Option<&'static str> {
    match name {
        "amp" => Some("&"),
        "lt" => Some("<"),
        "gt" => Some(">"),
        "apos" => Some("'"),
        "quot" => Some("\""),
        _ => None,
    }
}

/// Decodes a character reference, enforcing the XML 1.0 `Char`
/// production: `&#0;`, other forbidden control characters, surrogates,
/// and `#xFFFE`/`#xFFFF` are rejected.
pub(crate) fn decode_char_ref(digits: &str, radix: u32) -> Result<char, String> {
    if digits.is_empty() {
        return Err("empty character reference".to_owned());
    }
    let code = u32::from_str_radix(digits, radix)
        .map_err(|_| "character reference out of range".to_owned())?;
    let ch =
        char::from_u32(code).ok_or_else(|| format!("invalid character reference &#{code};"))?;
    if !is_xml_char(ch) {
        return Err(format!(
            "character reference &#x{code:X}; is not a legal XML character"
        ));
    }
    Ok(ch)
}

/// The XML 1.0 `Char` production.
pub(crate) fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

pub(crate) fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

pub(crate) fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || matches!(c, b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::from_str(input);
        let mut out = Vec::new();
        loop {
            let e = r.next_event().expect("valid input").to_event();
            let done = e == XmlEvent::EndDocument;
            out.push(e);
            if done {
                return out;
            }
        }
    }

    fn names(input: &str) -> Vec<String> {
        events(input)
            .into_iter()
            .map(|e| match e {
                XmlEvent::Doctype { name, .. } => format!("doctype:{name}"),
                XmlEvent::StartElement { name, .. } => format!("+{name}"),
                XmlEvent::EndElement { name, .. } => format!("-{name}"),
                XmlEvent::Text { text, .. } => format!("t:{text}"),
                XmlEvent::EndDocument => "$".to_owned(),
            })
            .collect()
    }

    fn first_error(input: &str) -> ParseError {
        let mut r = XmlReader::from_str(input);
        loop {
            match r.next_event() {
                Ok(XmlToken::EndDocument) => panic!("{input:?} must not parse"),
                Ok(_) => continue,
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn event_sequence_for_nested_document() {
        assert_eq!(
            names("<a><b>hi</b><c/></a>"),
            vec!["+a", "+b", "t:hi", "-b", "+c", "-c", "-a", "$"]
        );
    }

    #[test]
    fn text_coalesced_across_comments_and_cdata() {
        assert_eq!(
            names("<a>one<!--x-->two<![CDATA[<3>]]>three</a>"),
            vec!["+a", "t:onetwo<3>three", "-a", "$"]
        );
    }

    #[test]
    fn whitespace_only_text_is_emitted() {
        assert_eq!(
            names("<a>\n  <b/>\n</a>"),
            vec!["+a", "t:\n  ", "+b", "-b", "t:\n", "-a", "$"]
        );
    }

    #[test]
    fn self_closing_synthesizes_end() {
        let evs = events("<a/>");
        assert!(matches!(
            &evs[0],
            XmlEvent::StartElement {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(&evs[1], XmlEvent::EndElement { name, .. } if name == "a"));
        assert_eq!(evs[2], XmlEvent::EndDocument);
    }

    #[test]
    fn io_source_matches_slice_source() {
        let input = "<a x=\"1\"><b>h&amp;llo</b><!--c--><c/>tail</a>";
        let from_slice = events(input);
        let mut r = XmlReader::from_reader(input.as_bytes());
        let mut from_io = Vec::new();
        loop {
            let e = r.next_event().unwrap().to_event();
            let done = e == XmlEvent::EndDocument;
            from_io.push(e);
            if done {
                break;
            }
        }
        assert_eq!(from_slice, from_io);
    }

    #[test]
    fn positions_reported_on_events() {
        let evs = events("<a>\n<b/></a>");
        let XmlEvent::StartElement { position, .. } = &evs[2] else {
            panic!("expected <b> start, got {:?}", evs[2]);
        };
        assert_eq!(position.line, 2);
        assert_eq!(position.column, 1);
    }

    #[test]
    fn name_ids_dense_in_first_occurrence_order() {
        let mut r = XmlReader::from_str("<a><b x=\"1\"/><a><b/></a></a>");
        let mut ids = Vec::new();
        loop {
            match r.next_event().unwrap() {
                XmlToken::StartElement { name, name_id, .. } => {
                    ids.push((name.to_owned(), name_id.index()));
                }
                XmlToken::EndDocument => break,
                _ => {}
            }
        }
        assert_eq!(
            ids,
            vec![
                ("a".to_owned(), 0),
                ("b".to_owned(), 1),
                ("a".to_owned(), 0),
                ("b".to_owned(), 1)
            ]
        );
        assert_eq!(r.name_count(), 2);
    }

    #[test]
    fn attributes_decoded_lazily() {
        let mut r = XmlReader::from_str("<a one=\"1\" two='2&amp;2' three=\"&#65;\"/>");
        let XmlToken::StartElement { attributes, .. } = r.next_event().unwrap() else {
            panic!("expected start tag");
        };
        let attrs: Vec<(String, String)> = attributes
            .iter()
            .map(|a| (a.name.to_owned(), a.value.to_owned()))
            .collect();
        assert_eq!(
            attrs,
            vec![
                ("one".to_owned(), "1".to_owned()),
                ("two".to_owned(), "2&2".to_owned()),
                ("three".to_owned(), "A".to_owned())
            ]
        );
    }

    #[test]
    fn nested_entity_references_expand() {
        let input = r#"<!DOCTYPE a [
            <!ENTITY inner "world">
            <!ENTITY outer "hello &inner;!">
        ]><a>&outer;</a>"#;
        let evs = events(input);
        assert!(evs
            .iter()
            .any(|e| matches!(e, XmlEvent::Text { text, .. } if text == "hello world!")));
    }

    #[test]
    fn recursive_entities_rejected() {
        let input = r#"<!DOCTYPE a [
            <!ENTITY x "&y;">
            <!ENTITY y "&x;">
        ]><a>&x;</a>"#;
        let err = first_error(input);
        assert!(err.message.contains("recursive"), "{err}");
    }

    #[test]
    fn billion_laughs_fails_cleanly() {
        let mut subset = String::from("<!ENTITY lol0 \"lolololololololololol\">");
        for i in 1..10 {
            let p = i - 1;
            subset.push_str(&format!(
                "<!ENTITY lol{i} \"&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};\">"
            ));
        }
        let input = format!("<!DOCTYPE a [{subset}]><a>&lol9;</a>");
        let err = first_error(&input);
        assert!(err.message.contains("expands to more than"), "{err}");
    }

    #[test]
    fn forbidden_character_references_rejected() {
        for bad in [
            "<a>&#0;</a>",
            "<a>&#x8;</a>",
            "<a>&#xFFFE;</a>",
            "<a>&#31;</a>",
        ] {
            let err = first_error(bad);
            assert!(err.message.contains("XML character"), "{bad}: {err}");
        }
        // Tab, LF, CR, and plane-1 chars stay legal.
        for good in ["<a>&#9;</a>", "<a>&#xA;</a>", "<a>&#x1F600;</a>"] {
            assert!(events(good).len() >= 3, "{good} must parse");
        }
    }

    #[test]
    fn malformed_internal_subset_is_an_error() {
        let input = "<!DOCTYPE a [<!ENTITY e \"oops>]><a>&e;</a>";
        let mut r = XmlReader::from_str(input);
        let err = r.next_event().unwrap_err();
        assert!(err.message.contains("in DTD internal subset"), "{err}");
    }

    #[test]
    fn mismatched_close_tag_positioned() {
        let err = first_error("<a>\n  <b></c>\n</a>");
        assert_eq!(err.position.line, 2);
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut r = XmlReader::from_str("<a><b><c/></b></a>");
        let mut max = 0;
        loop {
            if let XmlToken::EndDocument = r.next_event().unwrap() {
                break;
            }
            max = max.max(r.depth());
        }
        assert_eq!(max, 3);
    }

    #[test]
    fn oversized_token_rejected_with_position() {
        // A text run larger than the cap, behind an io source (so the
        // rolling window would otherwise grow without bound).
        let big = format!("<a>{}</a>", "x".repeat(4096));
        let mut r = XmlReader::from_reader(big.as_bytes());
        r.set_max_token(1024);
        let err = loop {
            match r.next_event() {
                Ok(XmlToken::EndDocument) => panic!("must not parse"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.message.contains("token too large"), "{err}");
        // The cap applies per token, not per document: many small
        // tokens under the same cap stream through fine.
        let many = format!("<a>{}</a>", "<b>xy</b>".repeat(2000));
        let mut r = XmlReader::from_reader(many.as_bytes());
        r.set_max_token(1024);
        let mut n = 0usize;
        loop {
            match r.next_event().expect("small tokens pass") {
                XmlToken::EndDocument => break,
                _ => n += 1,
            }
        }
        assert!(n > 4000);
    }

    #[test]
    fn swar_memchr_matches_naive() {
        let hay = b"abcdefghijklmnop<qrstuvwx&yz-0123]456789?";
        for &needle in b"<&-]?za\n" {
            assert_eq!(
                memchr(needle, hay),
                hay.iter().position(|&b| b == needle),
                "memchr({})",
                needle as char
            );
        }
        assert_eq!(
            memchr2(b'&', b'<', hay),
            hay.iter().position(|&b| b == b'&' || b == b'<')
        );
        assert_eq!(
            memchr3(b'"', b'&', b'<', hay),
            hay.iter()
                .position(|&b| b == b'"' || b == b'&' || b == b'<')
        );
        assert_eq!(memchr(b'!', hay), None);
        assert_eq!(memchr2(b'!', b'@', hay), None);
        assert_eq!(memchr3(b'!', b'@', b'#', hay), None);
        // All offsets within the SWAR word and in the tail.
        for i in 0..24 {
            let mut v = vec![b'.'; 24];
            v[i] = b'<';
            assert_eq!(memchr(b'<', &v), Some(i), "offset {i}");
            assert_eq!(memchr2(b'<', b'&', &v), Some(i));
            assert_eq!(memchr3(b'<', b'&', b'"', &v), Some(i));
        }
    }

    #[test]
    fn engine_selection_and_forced_scalar_agree() {
        let input = "<a x=\"1\" y='2'>text &amp; more<![CDATA[»]]><b/></a>";
        let mut fast = XmlReader::from_str(input);
        assert_eq!(fast.engine(), Engine::detect());
        let mut slow = XmlReader::from_str(input);
        slow.set_engine(Engine::Scalar);
        assert_eq!(slow.engine(), Engine::Scalar);
        loop {
            let a = fast.next_event().unwrap().to_event();
            let b = slow.next_event().unwrap().to_event();
            assert_eq!(a, b);
            if a == XmlEvent::EndDocument {
                break;
            }
        }
        // Switching mid-stream is allowed and changes nothing observable.
        let mut mixed = XmlReader::from_str(input);
        mixed.next_event().unwrap();
        mixed.set_engine(Engine::Scalar);
        mixed.next_event().unwrap();
        mixed.set_engine(Engine::detect());
        while !mixed.next_event().unwrap().is_end_document() {}
    }

    #[test]
    fn text_token_borrows_source_when_plain() {
        // Plain text comes back as a slice of the input itself.
        let input = "<a>plain text run</a>";
        let mut r = XmlReader::from_str(input);
        r.next_event().unwrap(); // <a>
        let XmlToken::Text { text, .. } = r.next_event().unwrap() else {
            panic!("expected text");
        };
        let inner = &input[3..3 + text.len()];
        assert_eq!(text, inner);
        assert!(std::ptr::eq(text.as_ptr(), inner.as_ptr()), "zero-copy");
    }
}
