//! Pull-based streaming XML reader.
//!
//! [`XmlReader`] lexes a document into a flat sequence of [`XmlEvent`]s —
//! start/end tags, coalesced character data, the DOCTYPE — without ever
//! building a tree. It is the single XML front end of the workspace: the
//! tree parser in [`crate::parser`] is a thin fold over this reader, so
//! streaming consumers (the BonXai streaming validator in particular) see
//! exactly the same documents, entity expansions, and errors as tree
//! consumers, by construction.
//!
//! The reader is generic over a [`ByteSrc`]:
//!
//! * [`SliceSrc`] — a borrowed in-memory buffer (zero copies, used by
//!   [`crate::parse`]);
//! * [`IoSrc`] — any [`std::io::Read`] behind a small rolling window, so
//!   arbitrarily large documents arriving from a file or socket are
//!   consumed in O(window + depth) memory.
//!
//! Character data is coalesced exactly as the tree parser merges text
//! nodes: one [`XmlEvent::Text`] per maximal run of character data, CDATA
//! sections, and entity expansions, with comments and processing
//! instructions spliced out. Whitespace-only runs are preserved.
//!
//! General entities declared in the internal DTD subset are expanded
//! recursively (nested `&ref;` inside an entity value is resolved), with a
//! depth bound ([`MAX_ENTITY_DEPTH`]) and a total-output bound
//! ([`MAX_ENTITY_EXPANSION`]) so recursive or billion-laughs-style inputs
//! fail with a positioned [`ParseError`] instead of diverging.

use std::collections::BTreeMap;
use std::io::Read;

use crate::error::{ParseError, Position};
use crate::tree::Attribute;

/// Maximum nesting depth of entity references inside entity values.
pub const MAX_ENTITY_DEPTH: usize = 16;

/// Maximum total bytes one content-level entity reference may expand to
/// (the billion-laughs guard).
pub const MAX_ENTITY_EXPANSION: usize = 1 << 20;

/// Size of the rolling window an [`IoSrc`] reads ahead.
const IO_CHUNK: usize = 64 * 1024;

/// A streaming XML event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<!DOCTYPE name …>`, with the raw internal subset if present.
    /// Entity declarations from the subset take effect on later events.
    Doctype {
        /// The declared document-type name.
        name: String,
        /// The raw text between `[` and `]`, if a subset was present.
        internal_subset: Option<String>,
    },
    /// An element start tag (or the opening half of a self-closing tag).
    StartElement {
        /// Element name as written.
        name: String,
        /// Attributes in document order, entity references resolved.
        attributes: Vec<Attribute>,
        /// Whether the tag was written `<name …/>`. A matching
        /// [`XmlEvent::EndElement`] is synthesized either way.
        self_closing: bool,
        /// Position of the `<`.
        position: Position,
    },
    /// An element end tag (synthesized for self-closing tags).
    EndElement {
        /// Element name.
        name: String,
        /// Position of the `</` (or of the end of a self-closing tag).
        position: Position,
    },
    /// A maximal run of character data (text, CDATA, entity expansions).
    /// Never empty; whitespace-only runs are emitted.
    Text {
        /// The decoded character data.
        text: String,
        /// Position where the run began.
        position: Position,
    },
    /// End of the document (after the root element and trailing misc).
    EndDocument,
}

/// A source of bytes for the reader: a cursor with bounded lookahead.
pub trait ByteSrc {
    /// The bytes visible at the cursor, refilled to at least `n` bytes
    /// unless the input ends first. May return more than `n`.
    fn window(&mut self, n: usize) -> &[u8];
    /// Consumes `n` bytes (no more than the last window's length).
    fn advance(&mut self, n: usize);
}

/// An in-memory byte source borrowing the whole input.
pub struct SliceSrc<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSrc<'a> {
    /// Wraps a borrowed buffer.
    pub fn new(data: &'a [u8]) -> Self {
        SliceSrc { data, pos: 0 }
    }
}

impl ByteSrc for SliceSrc<'_> {
    #[inline]
    fn window(&mut self, _n: usize) -> &[u8] {
        &self.data[self.pos..]
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        self.pos += n;
    }
}

/// A byte source over any [`Read`], keeping only a small rolling window
/// in memory — this is what makes end-to-end streaming validation
/// O(depth) in document size.
pub struct IoSrc<R: Read> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
}

impl<R: Read> IoSrc<R> {
    /// Wraps a reader. No buffering layer is needed underneath; the
    /// source reads in [`IO_CHUNK`]-sized chunks.
    pub fn new(src: R) -> Self {
        IoSrc {
            src,
            buf: Vec::with_capacity(IO_CHUNK),
            pos: 0,
            eof: false,
        }
    }
}

impl<R: Read> ByteSrc for IoSrc<R> {
    fn window(&mut self, n: usize) -> &[u8] {
        while self.buf.len() - self.pos < n && !self.eof {
            // Drop the consumed prefix before growing the window.
            if self.pos > 0 {
                self.buf.copy_within(self.pos.., 0);
                self.buf.truncate(self.buf.len() - self.pos);
                self.pos = 0;
            }
            let old = self.buf.len();
            self.buf.resize(old + IO_CHUNK, 0);
            match self.src.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    self.eof = true;
                }
                Ok(k) => self.buf.truncate(old + k),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.buf.truncate(old);
                }
                Err(_) => {
                    // Surfaced as "unexpected end of input" by the lexer;
                    // positioned errors beat a panic mid-stream.
                    self.buf.truncate(old);
                    self.eof = true;
                }
            }
        }
        &self.buf[self.pos..]
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Where the reader is in the document grammar.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stage {
    /// Before the root element: XML declaration, misc, DOCTYPE.
    Prolog,
    /// Inside the root element.
    Content,
    /// After the root element: trailing misc only.
    Epilog,
    /// [`XmlEvent::EndDocument`] has been emitted.
    Done,
}

/// A pull-based streaming XML parser; see the module docs.
pub struct XmlReader<S> {
    src: S,
    /// Absolute byte offset of the cursor.
    offset: usize,
    line: u32,
    /// Absolute offset where the current line starts.
    line_start: usize,
    /// General entities from the internal subset (beyond the predefined 5),
    /// raw (unexpanded) as declared.
    entities: BTreeMap<String, String>,
    /// Fully-expanded entity values, memoized on first reference.
    expanded: BTreeMap<String, String>,
    /// Open element names, innermost last.
    open: Vec<String>,
    stage: Stage,
    /// End event owed for a just-emitted self-closing start tag.
    pending_end: Option<(String, Position)>,
}

/// A reader over a borrowed in-memory document.
pub type StrReader<'a> = XmlReader<SliceSrc<'a>>;

impl<'a> XmlReader<SliceSrc<'a>> {
    /// Streams over an in-memory document.
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(input: &'a str) -> Self {
        XmlReader::with_source(SliceSrc::new(input.as_bytes()))
    }
}

impl<R: Read> XmlReader<IoSrc<R>> {
    /// Streams over any [`Read`] (file, socket, stdin) with a rolling
    /// window — the whole document is never resident.
    pub fn from_reader(src: R) -> Self {
        XmlReader::with_source(IoSrc::new(src))
    }
}

impl<S: ByteSrc> XmlReader<S> {
    /// Wraps an arbitrary byte source.
    pub fn with_source(src: S) -> Self {
        XmlReader {
            src,
            offset: 0,
            line: 1,
            line_start: 0,
            entities: BTreeMap::new(),
            expanded: BTreeMap::new(),
            open: Vec::new(),
            stage: Stage::Prolog,
            pending_end: None,
        }
    }

    /// The current cursor position (for error reporting by consumers).
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.offset - self.line_start) as u32 + 1,
            offset: self.offset,
        }
    }

    /// Current element nesting depth (0 outside the root element). A
    /// self-closing element counts until its synthesized end event.
    pub fn depth(&self) -> usize {
        self.open.len() + usize::from(self.pending_end.is_some())
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    #[inline]
    fn peek(&mut self) -> Option<u8> {
        self.src.window(1).first().copied()
    }

    #[inline]
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.src.advance(1);
        self.offset += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.offset;
        }
        Some(c)
    }

    fn starts_with(&mut self, s: &str) -> bool {
        self.src.window(s.len()).starts_with(s.as_bytes())
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Pulls the next event. After [`XmlEvent::EndDocument`], returns
    /// `EndDocument` forever.
    pub fn next_event(&mut self) -> Result<XmlEvent, ParseError> {
        match self.stage {
            Stage::Prolog => self.next_prolog(),
            Stage::Content => self.next_content(),
            Stage::Epilog => self.next_epilog(),
            Stage::Done => Ok(XmlEvent::EndDocument),
        }
    }

    fn next_prolog(&mut self) -> Result<XmlEvent, ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                let (name, internal_subset) = self.parse_doctype()?;
                return Ok(XmlEvent::Doctype {
                    name,
                    internal_subset,
                });
            } else if self.peek() == Some(b'<') {
                self.stage = Stage::Content;
                return self.read_start_tag();
            } else {
                return Err(self.err("expected root element"));
            }
        }
    }

    fn next_content(&mut self) -> Result<XmlEvent, ParseError> {
        if let Some((name, position)) = self.pending_end.take() {
            if self.open.is_empty() {
                self.stage = Stage::Epilog;
            }
            return Ok(XmlEvent::EndElement { name, position });
        }
        let mut text = String::new();
        let mut text_pos = self.position();
        loop {
            match self.peek() {
                None => {
                    let name = self.open.last().cloned().unwrap_or_default();
                    return Err(self.err(format!("unexpected end of input in <{name}>")));
                }
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        if text.is_empty() {
                            text_pos = self.position();
                        }
                        self.read_cdata(&mut text)?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else if !text.is_empty() {
                        // A real tag follows: flush the coalesced run
                        // first, leaving the cursor on the `<`.
                        return Ok(XmlEvent::Text {
                            text,
                            position: text_pos,
                        });
                    } else if self.starts_with("</") {
                        return self.read_end_tag();
                    } else {
                        return self.read_start_tag();
                    }
                }
                Some(b'&') => {
                    if text.is_empty() {
                        text_pos = self.position();
                    }
                    let resolved = self.parse_entity_ref()?;
                    text.push_str(&resolved);
                }
                Some(_) => {
                    if text.is_empty() {
                        text_pos = self.position();
                    }
                    self.read_char_into(&mut text)?;
                }
            }
        }
    }

    fn next_epilog(&mut self) -> Result<XmlEvent, ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.peek().is_some() {
                return Err(self.err("unexpected content after root element"));
            } else {
                self.stage = Stage::Done;
                return Ok(XmlEvent::EndDocument);
            }
        }
    }

    /// Consumes one character of content (multi-byte sequences are
    /// re-validated as UTF-8) into `out`.
    fn read_char_into(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.bump().expect("peeked");
        if c < 0x80 {
            out.push(c as char);
            return Ok(());
        }
        // Collect the continuation bytes of this sequence (at most 3).
        let mut seq = [c, 0, 0, 0];
        let mut len = 1;
        while len < 4 {
            match self.peek() {
                Some(b) if b & 0xC0 == 0x80 => {
                    seq[len] = b;
                    len += 1;
                    self.bump();
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&seq[..len])
            .map_err(|_| self.err("invalid UTF-8 sequence"))?;
        out.push_str(s);
        Ok(())
    }

    fn read_start_tag(&mut self) -> Result<XmlEvent, ParseError> {
        let position = self.position();
        self.expect_str("<")?;
        let name = self.parse_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => break,
                _ => {}
            }
            let attr_name = self.parse_name()?;
            self.skip_ws();
            self.expect_str("=")?;
            self.skip_ws();
            let value = self.parse_attr_value()?;
            if attributes.iter().any(|a| a.name == attr_name) {
                return Err(self.err(format!("duplicate attribute {attr_name:?}")));
            }
            attributes.push(Attribute {
                name: attr_name,
                value,
            });
        }
        self.skip_ws();
        let self_closing = if self.starts_with("/>") {
            self.expect_str("/>")?;
            true
        } else {
            self.expect_str(">")?;
            false
        };
        if self_closing {
            self.pending_end = Some((name.clone(), self.position()));
        } else {
            self.open.push(name.clone());
        }
        Ok(XmlEvent::StartElement {
            name,
            attributes,
            self_closing,
            position,
        })
    }

    fn read_end_tag(&mut self) -> Result<XmlEvent, ParseError> {
        let position = self.position();
        self.expect_str("</")?;
        let close = self.parse_name()?;
        let expected = self.open.last().expect("content stage has an open element");
        if close != *expected {
            return Err(self.err(format!(
                "mismatched close tag: expected </{expected}>, found </{close}>"
            )));
        }
        self.skip_ws();
        self.expect_str(">")?;
        self.open.pop();
        if self.open.is_empty() {
            self.stage = Stage::Epilog;
        }
        Ok(XmlEvent::EndElement {
            name: close,
            position,
        })
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => {
                    let resolved = self.parse_entity_ref()?;
                    value.push_str(&resolved);
                }
                Some(_) => self.read_char_into(&mut value)?,
            }
        }
    }

    /// Resolves `&…;` at the cursor: a character reference (validated
    /// against the XML `Char` production) or a general entity (expanded
    /// recursively with depth/size guards).
    fn parse_entity_ref(&mut self) -> Result<String, ParseError> {
        let pos = self.position();
        self.expect_str("&")?;
        if self.peek() == Some(b'#') {
            self.bump();
            let (radix, digits_ok): (u32, fn(u8) -> bool) = if self.peek() == Some(b'x') {
                self.bump();
                (16, |c: u8| c.is_ascii_hexdigit())
            } else {
                (10, |c: u8| c.is_ascii_digit())
            };
            let mut digits = String::new();
            while matches!(self.peek(), Some(c) if digits_ok(c)) {
                digits.push(self.bump().expect("peeked") as char);
            }
            if digits.is_empty() {
                return Err(self.err("empty character reference"));
            }
            self.expect_str(";")?;
            let ch = decode_char_ref(&digits, radix)
                .map_err(|msg| ParseError::new(pos, msg))?;
            return Ok(ch.to_string());
        }
        let name = self.parse_name()?;
        self.expect_str(";")?;
        if let Some(predef) = predefined_entity(&name) {
            return Ok(predef.to_owned());
        }
        self.expand_entity(&name, pos)
    }

    /// Fully expands general entity `name`, resolving nested references
    /// in its replacement text. Memoized per entity.
    fn expand_entity(&mut self, name: &str, pos: Position) -> Result<String, ParseError> {
        if let Some(v) = self.expanded.get(name) {
            return Ok(v.clone());
        }
        if !self.entities.contains_key(name) {
            return Err(ParseError::new(pos, format!("undeclared entity &{name};")));
        }
        let mut active: Vec<&str> = Vec::new();
        let mut produced = 0usize;
        let out = expand_rec(&self.entities, name, &mut active, &mut produced, pos)?;
        self.expanded.insert(name.to_owned(), out.clone());
        Ok(out)
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let mut raw = Vec::new();
        match self.peek() {
            Some(c) if is_name_start(c) => {
                raw.push(c);
                self.bump();
            }
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            raw.push(self.bump().expect("peeked"));
        }
        String::from_utf8(raw).map_err(|_| self.err("invalid UTF-8 in name"))
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect_str("<!--")?;
        loop {
            if self.starts_with("-->") {
                return self.expect_str("-->");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect_str("<?")?;
        loop {
            if self.starts_with("?>") {
                return self.expect_str("?>");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
    }

    fn read_cdata(&mut self, text: &mut String) -> Result<(), ParseError> {
        self.expect_str("<![CDATA[")?;
        let mut raw = Vec::new();
        loop {
            if self.starts_with("]]>") {
                let content = std::str::from_utf8(&raw)
                    .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                text.push_str(content);
                return self.expect_str("]]>");
            }
            match self.bump() {
                Some(b) => raw.push(b),
                None => return Err(self.err("unterminated CDATA section")),
            }
        }
    }

    fn parse_doctype(&mut self) -> Result<(String, Option<String>), ParseError> {
        self.expect_str("<!DOCTYPE")?;
        self.skip_ws();
        let name = self.parse_name()?;
        self.skip_ws();
        // Optional external ID (SYSTEM/PUBLIC) — recorded but not fetched.
        if self.starts_with("SYSTEM") {
            self.expect_str("SYSTEM")?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
        } else if self.starts_with("PUBLIC") {
            self.expect_str("PUBLIC")?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
            self.parse_attr_value()?;
            self.skip_ws();
        }
        let mut subset = None;
        if self.peek() == Some(b'[') {
            self.bump();
            let subset_pos = self.position();
            let mut raw = Vec::new();
            let mut depth = 0usize;
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated DOCTYPE internal subset")),
                    Some(b'<') => {
                        depth += 1;
                        raw.push(b'<');
                        self.bump();
                    }
                    Some(b'>') => {
                        depth = depth.saturating_sub(1);
                        raw.push(b'>');
                        self.bump();
                    }
                    Some(b']') if depth == 0 => {
                        self.bump();
                        break;
                    }
                    Some(c) => {
                        raw.push(c);
                        self.bump();
                    }
                }
            }
            let text = String::from_utf8(raw).map_err(|_| self.err("invalid UTF-8 in DTD"))?;
            self.load_entities(&text, subset_pos)?;
            subset = Some(text);
            self.skip_ws();
        }
        self.expect_str(">")?;
        Ok((name, subset))
    }

    /// Extracts general-entity declarations from the internal subset. A
    /// malformed subset is a parse error of the document — reported with
    /// its position inside the subset — not a silent loss of all
    /// declarations.
    fn load_entities(&mut self, subset: &str, subset_pos: Position) -> Result<(), ParseError> {
        match crate::dtd::parser::parse_dtd(subset) {
            Ok(dtd) => {
                for (name, value) in dtd.general_entities {
                    self.entities.insert(name, value);
                }
                Ok(())
            }
            Err(e) => {
                // Translate the subset-relative position to the document.
                let position = Position {
                    line: subset_pos.line + e.position.line - 1,
                    column: if e.position.line == 1 {
                        subset_pos.column + e.position.column - 1
                    } else {
                        e.position.column
                    },
                    offset: subset_pos.offset + e.position.offset,
                };
                Err(ParseError::new(
                    position,
                    format!("in DTD internal subset: {}", e.message),
                ))
            }
        }
    }
}

/// Expands entity `name` from `entities`, resolving nested general-entity
/// and character references in replacement text. `active` detects cycles,
/// `produced` bounds total output across the whole expansion.
fn expand_rec<'e>(
    entities: &'e BTreeMap<String, String>,
    name: &'e str,
    active: &mut Vec<&'e str>,
    produced: &mut usize,
    pos: Position,
) -> Result<String, ParseError> {
    if active.contains(&name) {
        return Err(ParseError::new(
            pos,
            format!("recursive reference to entity &{name};"),
        ));
    }
    if active.len() >= MAX_ENTITY_DEPTH {
        return Err(ParseError::new(
            pos,
            format!("entity references nested more than {MAX_ENTITY_DEPTH} levels deep"),
        ));
    }
    let Some(raw) = entities.get(name) else {
        return Err(ParseError::new(pos, format!("undeclared entity &{name};")));
    };
    active.push(name);
    let mut out = String::new();
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the run up to the next reference verbatim.
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&raw[start..i]);
            *produced += i - start;
        } else {
            let Some(semi) = raw[i..].find(';').map(|k| i + k) else {
                return Err(ParseError::new(
                    pos,
                    format!("malformed reference in entity &{name}; value"),
                ));
            };
            let inner = &raw[i + 1..semi];
            if let Some(digits) = inner.strip_prefix('#') {
                let (digits, radix) = match digits.strip_prefix('x') {
                    Some(hex) => (hex, 16),
                    None => (digits, 10),
                };
                let ch = decode_char_ref(digits, radix)
                    .map_err(|msg| ParseError::new(pos, msg))?;
                out.push(ch);
                *produced += ch.len_utf8();
            } else if let Some(predef) = predefined_entity(inner) {
                out.push_str(predef);
                *produced += predef.len();
            } else {
                // Nested expansions account for their own bytes.
                let nested = expand_rec(entities, inner, active, produced, pos)?;
                out.push_str(&nested);
            }
            i = semi + 1;
        }
        if *produced > MAX_ENTITY_EXPANSION {
            return Err(ParseError::new(
                pos,
                format!(
                    "entity &{name}; expands to more than {MAX_ENTITY_EXPANSION} bytes"
                ),
            ));
        }
    }
    active.pop();
    Ok(out)
}

/// The five predefined entities.
fn predefined_entity(name: &str) -> Option<&'static str> {
    match name {
        "amp" => Some("&"),
        "lt" => Some("<"),
        "gt" => Some(">"),
        "apos" => Some("'"),
        "quot" => Some("\""),
        _ => None,
    }
}

/// Decodes a character reference, enforcing the XML 1.0 `Char`
/// production: `&#0;`, other forbidden control characters, surrogates,
/// and `#xFFFE`/`#xFFFF` are rejected.
fn decode_char_ref(digits: &str, radix: u32) -> Result<char, String> {
    if digits.is_empty() {
        return Err("empty character reference".to_owned());
    }
    let code = u32::from_str_radix(digits, radix)
        .map_err(|_| "character reference out of range".to_owned())?;
    let ch = char::from_u32(code)
        .ok_or_else(|| format!("invalid character reference &#{code};"))?;
    if !is_xml_char(ch) {
        return Err(format!(
            "character reference &#x{code:X}; is not a legal XML character"
        ));
    }
    Ok(ch)
}

/// The XML 1.0 `Char` production.
fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || matches!(c, b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::from_str(input);
        let mut out = Vec::new();
        loop {
            let e = r.next_event().expect("valid input");
            let done = e == XmlEvent::EndDocument;
            out.push(e);
            if done {
                return out;
            }
        }
    }

    fn names(input: &str) -> Vec<String> {
        events(input)
            .into_iter()
            .map(|e| match e {
                XmlEvent::Doctype { name, .. } => format!("doctype:{name}"),
                XmlEvent::StartElement { name, .. } => format!("+{name}"),
                XmlEvent::EndElement { name, .. } => format!("-{name}"),
                XmlEvent::Text { text, .. } => format!("t:{text}"),
                XmlEvent::EndDocument => "$".to_owned(),
            })
            .collect()
    }

    #[test]
    fn event_sequence_for_nested_document() {
        assert_eq!(
            names("<a><b>hi</b><c/></a>"),
            vec!["+a", "+b", "t:hi", "-b", "+c", "-c", "-a", "$"]
        );
    }

    #[test]
    fn text_coalesced_across_comments_and_cdata() {
        assert_eq!(
            names("<a>one<!--x-->two<![CDATA[<3>]]>three</a>"),
            vec!["+a", "t:onetwo<3>three", "-a", "$"]
        );
    }

    #[test]
    fn whitespace_only_text_is_emitted() {
        assert_eq!(
            names("<a>\n  <b/>\n</a>"),
            vec!["+a", "t:\n  ", "+b", "-b", "t:\n", "-a", "$"]
        );
    }

    #[test]
    fn self_closing_synthesizes_end() {
        let evs = events("<a/>");
        assert!(matches!(
            &evs[0],
            XmlEvent::StartElement { self_closing: true, .. }
        ));
        assert!(matches!(&evs[1], XmlEvent::EndElement { name, .. } if name == "a"));
        assert_eq!(evs[2], XmlEvent::EndDocument);
    }

    #[test]
    fn io_source_matches_slice_source() {
        let input = "<a x=\"1\"><b>h&amp;llo</b><!--c--><c/>tail</a>";
        let from_slice = events(input);
        let mut r = XmlReader::from_reader(input.as_bytes());
        let mut from_io = Vec::new();
        loop {
            let e = r.next_event().unwrap();
            let done = e == XmlEvent::EndDocument;
            from_io.push(e);
            if done {
                break;
            }
        }
        assert_eq!(from_slice, from_io);
    }

    #[test]
    fn positions_reported_on_events() {
        let evs = events("<a>\n<b/></a>");
        let XmlEvent::StartElement { position, .. } = &evs[2] else {
            panic!("expected <b> start, got {:?}", evs[2]);
        };
        assert_eq!(position.line, 2);
        assert_eq!(position.column, 1);
    }

    #[test]
    fn nested_entity_references_expand() {
        let input = r#"<!DOCTYPE a [
            <!ENTITY inner "world">
            <!ENTITY outer "hello &inner;!">
        ]><a>&outer;</a>"#;
        let evs = events(input);
        assert!(evs
            .iter()
            .any(|e| matches!(e, XmlEvent::Text { text, .. } if text == "hello world!")));
    }

    #[test]
    fn recursive_entities_rejected() {
        let input = r#"<!DOCTYPE a [
            <!ENTITY x "&y;">
            <!ENTITY y "&x;">
        ]><a>&x;</a>"#;
        let mut r = XmlReader::from_str(input);
        let err = loop {
            match r.next_event() {
                Ok(XmlEvent::EndDocument) => panic!("must not parse"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.message.contains("recursive"), "{err}");
    }

    #[test]
    fn billion_laughs_fails_cleanly() {
        let mut subset = String::from("<!ENTITY lol0 \"lolololololololololol\">");
        for i in 1..10 {
            let p = i - 1;
            subset.push_str(&format!(
                "<!ENTITY lol{i} \"&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};&lol{p};\">"
            ));
        }
        let input = format!("<!DOCTYPE a [{subset}]><a>&lol9;</a>");
        let mut r = XmlReader::from_str(&input);
        let err = loop {
            match r.next_event() {
                Ok(XmlEvent::EndDocument) => panic!("must not parse"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.message.contains("expands to more than"), "{err}");
    }

    #[test]
    fn forbidden_character_references_rejected() {
        for bad in ["<a>&#0;</a>", "<a>&#x8;</a>", "<a>&#xFFFE;</a>", "<a>&#31;</a>"] {
            let mut r = XmlReader::from_str(bad);
            let err = loop {
                match r.next_event() {
                    Ok(XmlEvent::EndDocument) => panic!("{bad} must not parse"),
                    Ok(_) => continue,
                    Err(e) => break e,
                }
            };
            assert!(err.message.contains("XML character"), "{bad}: {err}");
        }
        // Tab, LF, CR, and plane-1 chars stay legal.
        for good in ["<a>&#9;</a>", "<a>&#xA;</a>", "<a>&#x1F600;</a>"] {
            assert!(events(good).len() >= 3, "{good} must parse");
        }
    }

    #[test]
    fn malformed_internal_subset_is_an_error() {
        let input = "<!DOCTYPE a [<!ENTITY e \"oops>]><a>&e;</a>";
        let mut r = XmlReader::from_str(input);
        let err = r.next_event().unwrap_err();
        assert!(err.message.contains("in DTD internal subset"), "{err}");
    }

    #[test]
    fn mismatched_close_tag_positioned() {
        let mut r = XmlReader::from_str("<a>\n  <b></c>\n</a>");
        let err = loop {
            match r.next_event() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.position.line, 2);
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut r = XmlReader::from_str("<a><b><c/></b></a>");
        let mut max = 0;
        loop {
            match r.next_event().unwrap() {
                XmlEvent::EndDocument => break,
                _ => max = max.max(r.depth()),
            }
        }
        assert_eq!(max, 3);
    }
}
