//! Ergonomic programmatic document construction.
//!
//! ```
//! use xmltree::builder::elem;
//! let doc = elem("document")
//!     .child(elem("template").child(elem("section")))
//!     .child(elem("content").child(elem("section").attr("title", "Intro").text("hello")))
//!     .build();
//! assert_eq!(doc.ch_str(doc.root()), vec!["template", "content"]);
//! ```

use crate::tree::{Document, NodeId};

/// A pending element in a builder tree.
#[derive(Clone, Debug)]
pub struct ElementBuilder {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Child>,
}

#[derive(Clone, Debug)]
enum Child {
    Element(ElementBuilder),
    Text(String),
}

/// Starts building an element with the given name.
pub fn elem(name: &str) -> ElementBuilder {
    ElementBuilder {
        name: name.to_owned(),
        attributes: Vec::new(),
        children: Vec::new(),
    }
}

impl ElementBuilder {
    /// Adds an attribute.
    pub fn attr(mut self, name: &str, value: &str) -> Self {
        self.attributes.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Appends a child element.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(Child::Element(child));
        self
    }

    /// Appends several child elements.
    pub fn children<I: IntoIterator<Item = ElementBuilder>>(mut self, items: I) -> Self {
        for c in items {
            self.children.push(Child::Element(c));
        }
        self
    }

    /// Appends a text child.
    pub fn text(mut self, text: &str) -> Self {
        self.children.push(Child::Text(text.to_owned()));
        self
    }

    /// Materializes the tree as a [`Document`] with this element as root.
    pub fn build(self) -> Document {
        let mut doc = Document::new(&self.name);
        let root = doc.root();
        for (n, v) in &self.attributes {
            doc.set_attribute(root, n, v);
        }
        for c in self.children {
            attach(&mut doc, root, c);
        }
        doc
    }

    /// Appends this builder's tree under an existing node of `doc`.
    pub fn attach_to(self, doc: &mut Document, parent: NodeId) -> NodeId {
        let id = doc.add_element(parent, &self.name);
        for (n, v) in &self.attributes {
            doc.set_attribute(id, n, v);
        }
        for c in self.children {
            attach(doc, id, c);
        }
        id
    }
}

fn attach(doc: &mut Document, parent: NodeId, child: Child) {
    match child {
        Child::Element(e) => {
            e.attach_to(doc, parent);
        }
        Child::Text(t) => {
            doc.add_text(parent, &t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let doc = elem("a")
            .attr("x", "1")
            .child(elem("b").text("hi"))
            .children([elem("c"), elem("d")])
            .build();
        assert_eq!(doc.attribute(doc.root(), "x"), Some("1"));
        assert_eq!(doc.ch_str(doc.root()), vec!["b", "c", "d"]);
        let b = doc.element_children(doc.root()).next().unwrap();
        assert_eq!(doc.text(doc.children(b)[0]), Some("hi"));
    }

    #[test]
    fn attach_to_existing_document() {
        let mut doc = elem("root").build();
        let r = doc.root();
        let added = elem("extra").attr("k", "v").attach_to(&mut doc, r);
        assert_eq!(doc.parent(added), Some(r));
        assert_eq!(doc.attribute(added, "k"), Some("v"));
    }
}
