//! Document Type Definitions: the paper's baseline schema formalism.

pub mod model;
pub mod parser;
pub mod validator;

pub use model::{AttDef, AttType, ContentSpec, DefaultDecl, Dtd};
pub use parser::parse_dtd;
pub use validator::{is_valid, validate, DtdViolation, ViolationKind};
