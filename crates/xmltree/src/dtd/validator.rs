//! DTD validation of documents.
//!
//! Checks element content models (context-insensitively, as DTDs do),
//! attribute declarations (required/fixed/enumerated), and ID/IDREF
//! integrity.

use std::collections::{BTreeMap, BTreeSet};

use crate::dtd::model::{AttType, CompiledDtd, ContentSpec, DefaultDecl, Dtd};
use crate::tree::{Document, NodeId};

/// A validation violation, attached to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DtdViolation {
    /// The offending node.
    pub node: NodeId,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// Kinds of DTD validation violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Element name has no `<!ELEMENT>` declaration.
    UndeclaredElement(String),
    /// Child string does not match the content model; the index is the
    /// first offending child position (== len means incomplete content).
    ContentModel {
        /// Element name whose model failed.
        element: String,
        /// Index of the first offending element child.
        at: usize,
    },
    /// Significant text where the content model forbids it.
    UnexpectedText(String),
    /// Child elements under an `EMPTY` element.
    UnexpectedChildren(String),
    /// A child name not allowed by a mixed content model.
    DisallowedMixedChild {
        /// The parent element.
        element: String,
        /// The offending child name.
        child: String,
    },
    /// A `#REQUIRED` attribute is missing.
    MissingAttribute(String),
    /// An attribute not declared for this element.
    UndeclaredAttribute(String),
    /// Value differs from a `#FIXED` default.
    FixedMismatch {
        /// Attribute name.
        attribute: String,
        /// The required fixed value.
        expected: String,
    },
    /// Value not among the enumerated alternatives.
    NotInEnumeration {
        /// Attribute name.
        attribute: String,
        /// The offending value.
        value: String,
    },
    /// Duplicate ID value.
    DuplicateId(String),
    /// IDREF to an ID that does not exist.
    DanglingIdRef(String),
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::UndeclaredElement(n) => write!(f, "undeclared element <{n}>"),
            ViolationKind::ContentModel { element, at } => {
                write!(f, "content of <{element}> fails its model at child {at}")
            }
            ViolationKind::UnexpectedText(n) => write!(f, "<{n}> may not contain text"),
            ViolationKind::UnexpectedChildren(n) => {
                write!(f, "<{n}> is declared EMPTY but has children")
            }
            ViolationKind::DisallowedMixedChild { element, child } => {
                write!(f, "<{child}> not allowed in mixed content of <{element}>")
            }
            ViolationKind::MissingAttribute(a) => write!(f, "required attribute {a:?} missing"),
            ViolationKind::UndeclaredAttribute(a) => write!(f, "undeclared attribute {a:?}"),
            ViolationKind::FixedMismatch {
                attribute,
                expected,
            } => {
                write!(
                    f,
                    "attribute {attribute:?} must have fixed value {expected:?}"
                )
            }
            ViolationKind::NotInEnumeration { attribute, value } => {
                write!(f, "value {value:?} of {attribute:?} not in enumeration")
            }
            ViolationKind::DuplicateId(v) => write!(f, "duplicate ID {v:?}"),
            ViolationKind::DanglingIdRef(v) => write!(f, "IDREF {v:?} matches no ID"),
        }
    }
}

/// Validates `doc` against `dtd`, returning all violations (empty = valid).
pub fn validate(dtd: &Dtd, doc: &Document) -> Vec<DtdViolation> {
    validate_compiled(&dtd.compile(), doc)
}

/// Validation against a pre-compiled DTD (for hot loops and benches).
pub fn validate_compiled(compiled: &CompiledDtd<'_>, doc: &Document) -> Vec<DtdViolation> {
    let dtd = compiled.dtd;
    let mut violations = Vec::new();
    let mut ids: BTreeMap<String, NodeId> = BTreeMap::new();
    let mut idrefs: Vec<(NodeId, String)> = Vec::new();

    for node in doc.iter_elements() {
        let name = doc.name(node).expect("iter_elements yields elements");
        let Some(spec) = dtd.content_of(name) else {
            violations.push(DtdViolation {
                node,
                kind: ViolationKind::UndeclaredElement(name.to_owned()),
            });
            continue;
        };

        match spec {
            ContentSpec::Any => {}
            ContentSpec::Empty => {
                if doc.element_children(node).next().is_some() {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::UnexpectedChildren(name.to_owned()),
                    });
                }
                if doc.has_significant_text(node) {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::UnexpectedText(name.to_owned()),
                    });
                }
            }
            ContentSpec::Mixed(allowed) => {
                let allowed: BTreeSet<&str> =
                    allowed.iter().map(|&s| dtd.alphabet.name(s)).collect();
                for child in doc.element_children(node) {
                    let cname = doc.name(child).expect("element");
                    if !allowed.contains(cname) {
                        violations.push(DtdViolation {
                            node: child,
                            kind: ViolationKind::DisallowedMixedChild {
                                element: name.to_owned(),
                                child: cname.to_owned(),
                            },
                        });
                    }
                }
            }
            ContentSpec::Children(_) => {
                if doc.has_significant_text(node) {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::UnexpectedText(name.to_owned()),
                    });
                }
                let word: Option<Vec<relang::Sym>> = doc
                    .element_children(node)
                    .map(|c| dtd.alphabet.lookup(doc.name(c).expect("element")))
                    .collect();
                let matcher = compiled
                    .matchers
                    .get(name)
                    .expect("compiled matcher for every Children spec");
                match word {
                    None => {
                        // Some child name is not in the DTD's alphabet at
                        // all: find it for a precise report.
                        let at = doc
                            .element_children(node)
                            .position(|c| {
                                dtd.alphabet.lookup(doc.name(c).expect("element")).is_none()
                            })
                            .expect("some child missing from alphabet");
                        violations.push(DtdViolation {
                            node,
                            kind: ViolationKind::ContentModel {
                                element: name.to_owned(),
                                at,
                            },
                        });
                    }
                    Some(word) => {
                        if let Some(at) = matcher.first_error(&word) {
                            violations.push(DtdViolation {
                                node,
                                kind: ViolationKind::ContentModel {
                                    element: name.to_owned(),
                                    at,
                                },
                            });
                        }
                    }
                }
            }
        }

        // Attributes.
        let defs = dtd.attributes_of(name);
        let declared: BTreeSet<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        for attr in doc.attributes(node) {
            if attr.name.starts_with("xmlns") {
                continue; // namespace declarations are not DTD attributes
            }
            if !declared.contains(attr.name.as_str()) {
                violations.push(DtdViolation {
                    node,
                    kind: ViolationKind::UndeclaredAttribute(attr.name.clone()),
                });
            }
        }
        for def in defs {
            let value = doc.attribute(node, &def.name);
            match (&def.default, value) {
                (DefaultDecl::Required, None) => {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::MissingAttribute(def.name.clone()),
                    });
                    continue;
                }
                (DefaultDecl::Fixed(expected), Some(v)) if v != expected => {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::FixedMismatch {
                            attribute: def.name.clone(),
                            expected: expected.clone(),
                        },
                    });
                }
                _ => {}
            }
            let Some(v) = value else { continue };
            match &def.att_type {
                AttType::Enumerated(options) if !options.iter().any(|o| o == v) => {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::NotInEnumeration {
                            attribute: def.name.clone(),
                            value: v.to_owned(),
                        },
                    });
                }
                AttType::Id if ids.insert(v.to_owned(), node).is_some() => {
                    violations.push(DtdViolation {
                        node,
                        kind: ViolationKind::DuplicateId(v.to_owned()),
                    });
                }
                AttType::IdRef => idrefs.push((node, v.to_owned())),
                AttType::IdRefs => {
                    for tok in v.split_whitespace() {
                        idrefs.push((node, tok.to_owned()));
                    }
                }
                _ => {}
            }
        }
    }

    for (node, idref) in idrefs {
        if !ids.contains_key(&idref) {
            violations.push(DtdViolation {
                node,
                kind: ViolationKind::DanglingIdRef(idref),
            });
        }
    }

    violations
}

/// Whether `doc` is valid with respect to `dtd`.
pub fn is_valid(dtd: &Dtd, doc: &Document) -> bool {
    validate(dtd, doc).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::parser::parse_dtd;
    use crate::parser::parse_document;

    fn dtd() -> Dtd {
        parse_dtd(
            r#"
            <!ELEMENT doc (head, body)>
            <!ELEMENT head EMPTY>
            <!ELEMENT body (p)*>
            <!ELEMENT p (#PCDATA | em)*>
            <!ELEMENT em (#PCDATA)>
            <!ATTLIST p
                id   ID              #IMPLIED
                ref  IDREF           #IMPLIED
                kind (note | warn)   "note"
                lang CDATA           #REQUIRED>
        "#,
        )
        .unwrap()
    }

    #[test]
    fn valid_document() {
        let doc =
            parse_document(r#"<doc><head/><body><p lang="en">hi <em>there</em></p></body></doc>"#)
                .unwrap();
        assert!(is_valid(&dtd(), &doc));
    }

    #[test]
    fn content_model_violation() {
        // body before head
        let doc = parse_document(r#"<doc><body/><head/></doc>"#).unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { element, at: 0 } if element == "doc")));
    }

    #[test]
    fn incomplete_content_reported_at_end() {
        let doc = parse_document(r#"<doc><head/></doc>"#).unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { at: 1, .. })));
    }

    #[test]
    fn empty_element_violations() {
        let doc = parse_document(r#"<doc><head>text</head><body/></doc>"#).unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::UnexpectedText(n) if n == "head")));
    }

    #[test]
    fn undeclared_element() {
        let doc = parse_document(r#"<doc><head/><body><zzz/></body></doc>"#).unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::UndeclaredElement(n) if n == "zzz")));
        // and the body content model also fails (zzz not in alphabet? it is:
        // zzz is not in the alphabet, so ContentModel at 0)
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::ContentModel { at: 0, .. })));
    }

    #[test]
    fn mixed_content_checks() {
        let doc = parse_document(r#"<doc><head/><body><p lang="en">ok <head/></p></body></doc>"#)
            .unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::DisallowedMixedChild { element, child }
                if element == "p" && child == "head"
        )));
    }

    #[test]
    fn attribute_checks() {
        let doc = parse_document(
            r#"<doc><head/><body><p kind="fatal" bogus="1"><em>x</em></p></body></doc>"#,
        )
        .unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::MissingAttribute(a) if a == "lang")));
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::UndeclaredAttribute(a) if a == "bogus")));
        assert!(v.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::NotInEnumeration { value, .. } if value == "fatal"
        )));
    }

    #[test]
    fn id_integrity() {
        let doc = parse_document(
            r#"<doc><head/><body>
                <p lang="en" id="x"/>
                <p lang="en" id="x"/>
                <p lang="en" ref="ghost"/>
            </body></doc>"#,
        )
        .unwrap();
        let v = validate(&dtd(), &doc);
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::DuplicateId(x) if x == "x")));
        assert!(v
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::DanglingIdRef(r) if r == "ghost")));
    }
}
