//! The DTD object model.
//!
//! DTDs are the baseline formalism of the paper: "element declarations are
//! entirely context insensitive — the content model for an element is
//! solely dependent on the name of that element" (Section 2). Content
//! models reuse the [`relang`] regex machinery over a DTD-owned alphabet
//! of element names.

use std::collections::BTreeMap;

use relang::{Alphabet, CompiledDre, Regex, Sym};

/// A content specification from `<!ELEMENT name SPEC>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentSpec {
    /// `EMPTY` — no children, no text.
    Empty,
    /// `ANY` — anything.
    Any,
    /// `(#PCDATA | a | b)*` — mixed content; the listed element names may
    /// interleave with text in any order. `(#PCDATA)` is the empty list.
    Mixed(Vec<Sym>),
    /// Element content: a regular expression over element names. The XML
    /// spec requires these to be deterministic, like XSD's UPA.
    Children(Regex),
}

/// One attribute definition from an `<!ATTLIST>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub att_type: AttType,
    /// Default declaration.
    pub default: DefaultDecl,
}

/// Attribute types (the tokenized types are recognized but all validated
/// as token strings; ID/IDREF cross-references are checked).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttType {
    /// `CDATA` — any string.
    Cdata,
    /// `ID` — document-unique identifier.
    Id,
    /// `IDREF` — must match some ID in the document.
    IdRef,
    /// `IDREFS` — whitespace-separated IDREFs.
    IdRefs,
    /// `NMTOKEN` — a single name token.
    NmToken,
    /// `NMTOKENS` — whitespace-separated name tokens.
    NmTokens,
    /// `ENTITY`/`ENTITIES` — accepted, validated as tokens.
    Entity,
    /// Enumerated values `(v1 | v2 | …)`.
    Enumerated(Vec<String>),
}

/// Attribute default declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DefaultDecl {
    /// `#REQUIRED` — must be present.
    Required,
    /// `#IMPLIED` — optional, no default.
    Implied,
    /// `#FIXED "v"` — if present must equal `v`.
    Fixed(String),
    /// `"v"` — optional with default `v`.
    Default(String),
}

/// A parsed DTD.
#[derive(Clone, Debug, Default)]
pub struct Dtd {
    /// Alphabet of element names mentioned anywhere in the DTD.
    pub alphabet: Alphabet,
    /// Element declarations by name.
    pub elements: BTreeMap<String, ContentSpec>,
    /// Attribute-list declarations by element name.
    pub attlists: BTreeMap<String, Vec<AttDef>>,
    /// General entities declared in the DTD (`<!ENTITY name "value">`).
    pub general_entities: BTreeMap<String, String>,
}

impl Dtd {
    /// Looks up the content spec of an element.
    pub fn content_of(&self, element: &str) -> Option<&ContentSpec> {
        self.elements.get(element)
    }

    /// Attribute definitions of an element (empty slice if none declared).
    pub fn attributes_of(&self, element: &str) -> &[AttDef] {
        self.attlists.get(element).map_or(&[], Vec::as_slice)
    }

    /// Compiles all `Children` content models for repeated matching.
    pub fn compile(&self) -> CompiledDtd<'_> {
        let matchers = self
            .elements
            .iter()
            .filter_map(|(name, spec)| match spec {
                ContentSpec::Children(r) => {
                    Some((name.clone(), CompiledDre::compile(r, self.alphabet.len())))
                }
                _ => None,
            })
            .collect();
        CompiledDtd {
            dtd: self,
            matchers,
        }
    }

    /// The total size of the DTD: sum of content-model sizes.
    pub fn size(&self) -> usize {
        self.elements
            .values()
            .map(|spec| match spec {
                ContentSpec::Empty | ContentSpec::Any => 1,
                ContentSpec::Mixed(names) => names.len().max(1),
                ContentSpec::Children(r) => r.size(),
            })
            .sum()
    }
}

/// A DTD with compiled content models, ready for validation.
#[derive(Clone, Debug)]
pub struct CompiledDtd<'a> {
    /// The underlying DTD.
    pub dtd: &'a Dtd,
    pub(crate) matchers: BTreeMap<String, CompiledDre>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_symbol_occurrences() {
        let mut dtd = Dtd::default();
        let a = dtd.alphabet.intern("a");
        let b = dtd.alphabet.intern("b");
        dtd.elements.insert(
            "root".to_owned(),
            ContentSpec::Children(Regex::concat(vec![
                Regex::sym(a),
                Regex::star(Regex::sym(b)),
            ])),
        );
        dtd.elements.insert("a".to_owned(), ContentSpec::Empty);
        dtd.elements
            .insert("b".to_owned(), ContentSpec::Mixed(vec![]));
        assert_eq!(dtd.size(), 2 + 1 + 1);
    }

    #[test]
    fn attribute_lookup() {
        let mut dtd = Dtd::default();
        dtd.attlists.insert(
            "a".to_owned(),
            vec![AttDef {
                name: "id".to_owned(),
                att_type: AttType::Id,
                default: DefaultDecl::Required,
            }],
        );
        assert_eq!(dtd.attributes_of("a").len(), 1);
        assert!(dtd.attributes_of("zzz").is_empty());
    }
}
