//! Parser for DTD declarations (internal subsets and standalone DTD files).
//!
//! Handles `<!ELEMENT>`, `<!ATTLIST>`, `<!ENTITY>` (general and parameter),
//! comments, and processing instructions. Parameter entities (`%name;`)
//! are textually substituted, which is exactly what Figure 2 of the paper
//! relies on with its `%markup;` entity.

use std::collections::BTreeMap;

use relang::Regex;

use crate::dtd::model::{AttDef, AttType, ContentSpec, DefaultDecl, Dtd};
use crate::error::{ParseError, Position};

/// Deepest chain of parameter entities expanding inside each other
/// before the parser reports recursion. `%a;` referencing `%a;` (or a
/// cycle through other entities) would otherwise recurse unboundedly —
/// a stack overflow, which aborts rather than unwinds.
const MAX_PE_DEPTH: usize = 32;

/// Deepest parenthesis nesting accepted in a content model. The model
/// parser recurses per `(`, so unbounded nesting is another abort.
const MAX_MODEL_DEPTH: u32 = 512;

/// Parses a DTD from the text of declarations (without `<!DOCTYPE … [` /
/// `]>` wrappers).
pub fn parse_dtd(input: &str) -> Result<Dtd, ParseError> {
    let mut p = DtdParser {
        input: input.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        dtd: Dtd::default(),
        param_entities: BTreeMap::new(),
        pe_stack: Vec::new(),
    };
    p.parse()?;
    Ok(p.dtd)
}

struct DtdParser<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    dtd: Dtd,
    param_entities: BTreeMap<String, String>,
    /// Names of the parameter entities whose replacement text is being
    /// parsed right now, outermost first — the cycle detector.
    pe_stack: Vec<String>,
}

impl<'a> DtdParser<'a> {
    fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.pos - self.line_start) as u32 + 1,
            offset: self.pos,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn parse(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Ok(());
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!ELEMENT") {
                self.parse_element_decl()?;
            } else if self.starts_with("<!ATTLIST") {
                self.parse_attlist_decl()?;
            } else if self.starts_with("<!ENTITY") {
                self.parse_entity_decl()?;
            } else if self.starts_with("<!NOTATION") {
                self.skip_until_gt()?;
            } else if self.starts_with("%") {
                // Parameter-entity reference between declarations: expand
                // and parse the replacement text recursively.
                self.bump();
                let name = self.parse_name()?;
                self.expect_str(";")?;
                let text = self
                    .param_entities
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("undeclared parameter entity %{name};")))?;
                if self.pe_stack.contains(&name) {
                    return Err(self.err(format!(
                        "parameter entity %{name}; expands recursively (via %{};)",
                        self.pe_stack.join("; → %")
                    )));
                }
                if self.pe_stack.len() >= MAX_PE_DEPTH {
                    return Err(self.err(format!(
                        "parameter entities nested more than {MAX_PE_DEPTH} deep"
                    )));
                }
                let mut stack = self.pe_stack.clone();
                stack.push(name);
                let sub = parse_dtd_with_params(&text, &self.param_entities, stack)?;
                merge_dtd(&mut self.dtd, sub);
            } else {
                return Err(self.err("expected a DTD declaration"));
            }
        }
    }

    /// Reads up to the closing `>` of a declaration, expanding parameter
    /// entities textually.
    fn read_decl_body(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated declaration")),
                Some(b'>') => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'%') => {
                    self.bump();
                    // `%` followed by a name is a parameter entity ref;
                    // a lone `%` (e.g. inside a quoted value of ENTITY %)
                    // does not occur in declaration bodies we read here.
                    let name = self.parse_name()?;
                    self.expect_str(";")?;
                    let val =
                        self.param_entities.get(&name).cloned().ok_or_else(|| {
                            self.err(format!("undeclared parameter entity %{name};"))
                        })?;
                    out.push_str(&val);
                }
                Some(b'"') | Some(b'\'') => {
                    let quote = self.bump().expect("peeked");
                    out.push(quote as char);
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated quoted value")),
                            Some(c) if c == quote => {
                                out.push(c as char);
                                break;
                            }
                            Some(c) => out.push(c as char),
                        }
                    }
                }
                Some(_) => {
                    let c = self.bump().expect("peeked");
                    out.push(c as char);
                }
            }
        }
    }

    fn parse_element_decl(&mut self) -> Result<(), ParseError> {
        let decl_pos = self.position();
        self.expect_str("<!ELEMENT")?;
        let body = self.read_decl_body()?;
        let body = body.trim();
        let (name, spec_text) = split_name(body)
            .ok_or_else(|| ParseError::new(decl_pos, "malformed <!ELEMENT> declaration"))?;
        let spec = parse_content_spec(spec_text.trim(), &mut self.dtd, decl_pos)?;
        self.dtd.elements.insert(name.to_owned(), spec);
        Ok(())
    }

    fn parse_attlist_decl(&mut self) -> Result<(), ParseError> {
        let decl_pos = self.position();
        self.expect_str("<!ATTLIST")?;
        let body = self.read_decl_body()?;
        let body = body.trim();
        let (elem_name, rest) = split_name(body)
            .ok_or_else(|| ParseError::new(decl_pos, "malformed <!ATTLIST> declaration"))?;
        let defs = parse_att_defs(rest.trim(), decl_pos)?;
        self.dtd
            .attlists
            .entry(elem_name.to_owned())
            .or_default()
            .extend(defs);
        Ok(())
    }

    fn parse_entity_decl(&mut self) -> Result<(), ParseError> {
        let decl_pos = self.position();
        self.expect_str("<!ENTITY")?;
        self.skip_ws();
        let is_param = if self.peek() == Some(b'%') {
            self.bump();
            self.skip_ws();
            true
        } else {
            false
        };
        let name = self.parse_name()?;
        self.skip_ws();
        let value = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                let start = self.pos;
                while self.peek() != Some(q) {
                    if self.bump().is_none() {
                        return Err(self.err("unterminated entity value"));
                    }
                }
                let v = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in entity value"))?
                    .to_owned();
                self.bump(); // closing quote
                v
            }
            _ => {
                // External entity (SYSTEM/PUBLIC): skip, record empty.
                self.skip_until_gt()?;
                if is_param {
                    self.param_entities.insert(name, String::new());
                } else {
                    self.dtd.general_entities.insert(name, String::new());
                }
                return Ok(());
            }
        };
        self.skip_ws();
        self.expect_str(">")
            .map_err(|_| ParseError::new(decl_pos, "malformed <!ENTITY> declaration"))?;
        if is_param {
            self.param_entities.insert(name, value);
        } else {
            self.dtd.general_entities.insert(name, value);
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("names are ascii")
            .to_owned())
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect_str("<!--")?;
        loop {
            if self.starts_with("-->") {
                return self.expect_str("-->");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect_str("<?")?;
        loop {
            if self.starts_with("?>") {
                return self.expect_str("?>");
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
        }
    }

    fn skip_until_gt(&mut self) -> Result<(), ParseError> {
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated declaration")),
                Some(b'>') => return Ok(()),
                Some(_) => {}
            }
        }
    }
}

/// Parses with a pre-seeded parameter entity table (used when expanding a
/// parameter entity whose replacement text contains whole declarations).
fn parse_dtd_with_params(
    input: &str,
    params: &BTreeMap<String, String>,
    pe_stack: Vec<String>,
) -> Result<Dtd, ParseError> {
    let mut p = DtdParser {
        input: input.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        dtd: Dtd::default(),
        param_entities: params.clone(),
        pe_stack,
    };
    p.parse()?;
    Ok(p.dtd)
}

fn merge_dtd(into: &mut Dtd, from: Dtd) {
    // Remap symbols of `from`'s alphabet into `into`'s.
    for (name, spec) in from.elements {
        let spec = remap_spec(spec, &from.alphabet, into);
        into.elements.entry(name).or_insert(spec);
    }
    for (name, defs) in from.attlists {
        into.attlists.entry(name).or_default().extend(defs);
    }
    for (name, v) in from.general_entities {
        into.general_entities.entry(name).or_insert(v);
    }
}

fn remap_spec(spec: ContentSpec, from: &relang::Alphabet, into: &mut Dtd) -> ContentSpec {
    match spec {
        ContentSpec::Empty => ContentSpec::Empty,
        ContentSpec::Any => ContentSpec::Any,
        ContentSpec::Mixed(syms) => ContentSpec::Mixed(
            syms.into_iter()
                .map(|s| into.alphabet.intern(from.name(s)))
                .collect(),
        ),
        ContentSpec::Children(r) => {
            let remapped = r.map_symbols(&mut |s| into.alphabet.intern(from.name(s)));
            ContentSpec::Children(remapped)
        }
    }
}

/// Splits `body` into a leading name and the rest.
fn split_name(body: &str) -> Option<(&str, &str)> {
    let body = body.trim_start();
    let end = body
        .char_indices()
        .find(|&(_, c)| c.is_whitespace())
        .map_or(body.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    Some((&body[..end], &body[end..]))
}

/// Parses a content specification: `EMPTY`, `ANY`, mixed, or children.
fn parse_content_spec(text: &str, dtd: &mut Dtd, pos: Position) -> Result<ContentSpec, ParseError> {
    match text {
        "EMPTY" => return Ok(ContentSpec::Empty),
        "ANY" => return Ok(ContentSpec::Any),
        _ => {}
    }
    if text.contains("#PCDATA") {
        // (#PCDATA) or (#PCDATA|a|b)* — be lenient about whitespace.
        let inner = text
            .trim()
            .trim_end_matches('*')
            .trim()
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| ParseError::new(pos, "malformed mixed content model"))?;
        let mut names = Vec::new();
        for part in inner.split('|') {
            let part = part.trim();
            if part == "#PCDATA" || part.is_empty() {
                continue;
            }
            names.push(dtd.alphabet.intern(part));
        }
        names.sort_unstable();
        names.dedup();
        return Ok(ContentSpec::Mixed(names));
    }
    let regex = parse_children_model(text, dtd, pos)?;
    Ok(ContentSpec::Children(regex))
}

/// Parses a children content model (`(a, (b | c)*, d?)`) into a regex.
fn parse_children_model(text: &str, dtd: &mut Dtd, pos: Position) -> Result<Regex, ParseError> {
    // Translate the DTD syntax into the relang regex syntax: `,` becomes
    // juxtaposition; names, `|`, `()`, `*+?` carry over directly.
    let mut p = ModelParser {
        input: text.as_bytes(),
        pos: 0,
        dtd,
        err_pos: pos,
        depth: 0,
    };
    p.skip_ws();
    let r = p.parse_alt()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(ParseError::new(
            p.err_pos,
            format!("trailing input in content model: {text:?}"),
        ));
    }
    Ok(r)
}

struct ModelParser<'a> {
    input: &'a [u8],
    pos: usize,
    dtd: &'a mut Dtd,
    err_pos: Position,
    /// Current parenthesis nesting; recursion guard (see
    /// [`MAX_MODEL_DEPTH`]).
    depth: u32,
}

impl<'a> ModelParser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.err_pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                parts.push(self.parse_seq()?);
            } else {
                break;
            }
        }
        Ok(Regex::alt(parts))
    }

    fn parse_seq(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_postfix()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                parts.push(self.parse_postfix()?);
            } else {
                break;
            }
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    r = Regex::star(r);
                }
                Some(b'+') => {
                    self.pos += 1;
                    r = Regex::plus(r);
                }
                Some(b'?') => {
                    self.pos += 1;
                    r = Regex::opt(r);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                self.depth += 1;
                if self.depth > MAX_MODEL_DEPTH {
                    return Err(self.err(format!(
                        "content model nested more than {MAX_MODEL_DEPTH} parentheses deep"
                    )));
                }
                let r = self.parse_alt()?;
                self.skip_ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')' in content model"));
                }
                self.pos += 1;
                self.depth -= 1;
                Ok(r)
            }
            Some(c) if is_name_start(c) => {
                let start = self.pos;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if is_name_char(c)) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
                Ok(Regex::sym(self.dtd.alphabet.intern(name)))
            }
            _ => Err(self.err("expected name or '(' in content model")),
        }
    }
}

/// Parses the attribute definitions of an `<!ATTLIST>` body.
fn parse_att_defs(text: &str, pos: Position) -> Result<Vec<AttDef>, ParseError> {
    let mut defs = Vec::new();
    let mut toks = Tokens::new(text);
    while let Some(name) = toks.next_token() {
        let att_type = match toks
            .next_token()
            .ok_or_else(|| ParseError::new(pos, "missing attribute type"))?
        {
            t if t == "CDATA" => AttType::Cdata,
            t if t == "ID" => AttType::Id,
            t if t == "IDREF" => AttType::IdRef,
            t if t == "IDREFS" => AttType::IdRefs,
            t if t == "NMTOKEN" => AttType::NmToken,
            t if t == "NMTOKENS" => AttType::NmTokens,
            t if t == "ENTITY" || t == "ENTITIES" => AttType::Entity,
            t if t == "NOTATION" => {
                // NOTATION (n1|n2): consume the group, validate as token.
                let group = toks
                    .next_token()
                    .ok_or_else(|| ParseError::new(pos, "missing notation group"))?;
                let _ = group;
                AttType::NmToken
            }
            t if t.starts_with('(') => {
                let inner = t.trim_start_matches('(').trim_end_matches(')');
                AttType::Enumerated(
                    inner
                        .split('|')
                        .map(|v| v.trim().to_owned())
                        .filter(|v| !v.is_empty())
                        .collect(),
                )
            }
            t => {
                return Err(ParseError::new(
                    pos,
                    format!("unknown attribute type {t:?}"),
                ))
            }
        };
        let default = match toks
            .next_token()
            .ok_or_else(|| ParseError::new(pos, "missing attribute default"))?
        {
            t if t == "#REQUIRED" => DefaultDecl::Required,
            t if t == "#IMPLIED" => DefaultDecl::Implied,
            t if t == "#FIXED" => {
                let v = toks
                    .next_token()
                    .ok_or_else(|| ParseError::new(pos, "missing #FIXED value"))?;
                DefaultDecl::Fixed(unquote(&v))
            }
            t if t.starts_with('"') || t.starts_with('\'') => DefaultDecl::Default(unquote(&t)),
            t => {
                return Err(ParseError::new(
                    pos,
                    format!("unknown attribute default {t:?}"),
                ))
            }
        };
        defs.push(AttDef {
            name,
            att_type,
            default,
        });
    }
    Ok(defs)
}

fn unquote(s: &str) -> String {
    s.trim_matches(|c| c == '"' || c == '\'').to_owned()
}

/// Simple whitespace tokenizer that keeps `(...)` groups and quoted strings
/// together as single tokens.
struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str) -> Self {
        Tokens { rest: s }
    }

    fn next_token(&mut self) -> Option<String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return None;
        }
        let bytes = self.rest.as_bytes();
        let end = match bytes[0] {
            b'(' => {
                let mut depth = 0usize;
                let mut end = 0usize;
                for (i, &c) in bytes.iter().enumerate() {
                    if c == b'(' {
                        depth += 1;
                    } else if c == b')' {
                        depth -= 1;
                        if depth == 0 {
                            end = i + 1;
                            break;
                        }
                    }
                }
                if end == 0 {
                    self.rest.len()
                } else {
                    end
                }
            }
            q @ (b'"' | b'\'') => {
                let mut end = self.rest.len();
                for (i, &c) in bytes.iter().enumerate().skip(1) {
                    if c == q {
                        end = i + 1;
                        break;
                    }
                }
                end
            }
            _ => bytes
                .iter()
                .position(|&c| c.is_ascii_whitespace())
                .unwrap_or(self.rest.len()),
        };
        let tok = self.rest[..end].to_owned();
        self.rest = &self.rest[end..];
        Some(tok)
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b':' || c >= 0x80
}

fn is_name_char(c: u8) -> bool {
    is_name_start(c) || c.is_ascii_digit() || matches!(c, b'-' | b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_element_declarations() {
        let dtd = parse_dtd(
            r#"
            <!ELEMENT doc (head, body)>
            <!ELEMENT head EMPTY>
            <!ELEMENT body ANY>
            <!ELEMENT p (#PCDATA | em | strong)*>
            <!ELEMENT em (#PCDATA)>
        "#,
        )
        .unwrap();
        assert_eq!(dtd.elements.len(), 5);
        assert_eq!(dtd.content_of("head"), Some(&ContentSpec::Empty));
        assert_eq!(dtd.content_of("body"), Some(&ContentSpec::Any));
        match dtd.content_of("p").unwrap() {
            ContentSpec::Mixed(names) => assert_eq!(names.len(), 2),
            other => panic!("expected mixed, got {other:?}"),
        }
        match dtd.content_of("em").unwrap() {
            ContentSpec::Mixed(names) => assert!(names.is_empty()),
            other => panic!("expected mixed, got {other:?}"),
        }
        match dtd.content_of("doc").unwrap() {
            ContentSpec::Children(r) => assert_eq!(r.size(), 2),
            other => panic!("expected children, got {other:?}"),
        }
    }

    #[test]
    fn parses_children_operators() {
        let dtd = parse_dtd("<!ELEMENT a ((b | c)*, d?, e+)>").unwrap();
        match dtd.content_of("a").unwrap() {
            ContentSpec::Children(r) => {
                assert_eq!(r.size(), 4);
                assert!(relang::regex::determinism::is_deterministic(r));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_attlist() {
        let dtd = parse_dtd(
            r#"
            <!ELEMENT a EMPTY>
            <!ATTLIST a
                id     ID                #REQUIRED
                kind   (alpha | beta)    "alpha"
                note   CDATA             #IMPLIED
                ver    CDATA             #FIXED "1.0">
        "#,
        )
        .unwrap();
        let defs = dtd.attributes_of("a");
        assert_eq!(defs.len(), 4);
        assert_eq!(defs[0].att_type, AttType::Id);
        assert_eq!(defs[0].default, DefaultDecl::Required);
        assert_eq!(
            defs[1].att_type,
            AttType::Enumerated(vec!["alpha".to_owned(), "beta".to_owned()])
        );
        assert_eq!(defs[1].default, DefaultDecl::Default("alpha".to_owned()));
        assert_eq!(defs[3].default, DefaultDecl::Fixed("1.0".to_owned()));
    }

    #[test]
    fn parameter_entities_expand() {
        // The Figure 2 pattern: an entity holding part of a content model.
        let dtd = parse_dtd(
            r#"
            <!ENTITY % markup "bold|italic|font">
            <!ELEMENT section (#PCDATA|title|%markup;)*>
            <!ELEMENT bold (#PCDATA|%markup;)*>
        "#,
        )
        .unwrap();
        match dtd.content_of("section").unwrap() {
            ContentSpec::Mixed(names) => {
                let names: Vec<_> = names.iter().map(|&s| dtd.alphabet.name(s)).collect();
                assert_eq!(names, vec!["title", "bold", "italic", "font"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn general_entities_collected() {
        let dtd = parse_dtd(r#"<!ENTITY greet "hi there">"#).unwrap();
        assert_eq!(
            dtd.general_entities.get("greet").map(String::as_str),
            Some("hi there")
        );
    }

    #[test]
    fn comments_and_pis_skipped() {
        let dtd = parse_dtd("<!-- c --><?pi?><!ELEMENT a EMPTY>").unwrap();
        assert_eq!(dtd.elements.len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_dtd("<!ELEMENT a (b,>").is_err());
        assert!(parse_dtd("<!BOGUS a>").is_err());
        assert!(parse_dtd("<!ELEMENT a (#PCDATA | b>").is_err());
        assert!(parse_dtd("<!ELEMENT >").is_err());
    }

    #[test]
    fn mixed_names_sorted_for_stability() {
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA | z | b)*>").unwrap();
        match dtd.content_of("a").unwrap() {
            ContentSpec::Mixed(names) => {
                // interned in occurrence order (z then b) but stored sorted
                assert_eq!(names.len(), 2);
                assert!(names.windows(2).all(|w| w[0] <= w[1]));
            }
            other => panic!("{other:?}"),
        }
    }
}
