//! Implementations of the CLI subcommands.

use std::fs;
use std::process::ExitCode;

use bonxai_core::translate::{Path as TranslatePath, TranslateOptions};
use bonxai_core::{dtd_import, pipeline, BonxaiSchema, CompiledBxsd, ValidateOptions};
use xmltree::Document;

/// A loaded schema in any of the three formalisms.
enum AnySchema {
    Bonxai(BonxaiSchema),
    Xsd(xsd::Xsd),
    Dtd(xmltree::dtd::Dtd),
}

/// Detects the schema formalism from the file extension or, failing
/// that, the content.
fn detect_kind(path: &str, text: &str) -> &'static str {
    let lower = path.to_ascii_lowercase();
    if lower.ends_with(".bonxai") {
        "bonxai"
    } else if lower.ends_with(".xsd") {
        "xsd"
    } else if lower.ends_with(".dtd") {
        "dtd"
    } else {
        let head = text.trim_start();
        if head.starts_with("<!") {
            "dtd"
        } else if head.starts_with('<') {
            "xsd"
        } else {
            "bonxai"
        }
    }
}

/// Loads a schema file, detecting the formalism from the extension or,
/// failing that, the content.
fn load_schema(path: &str) -> Result<AnySchema, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match detect_kind(path, &text) {
        "bonxai" => BonxaiSchema::parse(&text)
            .map(AnySchema::Bonxai)
            .map_err(|e| format!("{path}: {e}")),
        "xsd" => xsd::parse_xsd(&text)
            .map(AnySchema::Xsd)
            .map_err(|e| format!("{path}: {e}")),
        _ => xmltree::dtd::parse_dtd(&text)
            .map(AnySchema::Dtd)
            .map_err(|e| format!("{path}: {e}")),
    }
}

fn load_document(path: &str) -> Result<Document, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    xmltree::parse_document(&text).map_err(|e| format!("{path}: {e}"))
}

/// Writes to `-o <file>` if present in args, else stdout.
fn emit_output(args: &[String], content: &str) -> Result<(), String> {
    match flag_value(args, "-o") {
        Some(path) => fs::write(&path, content).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a == "-o"
            || a == "--root"
            || a == "--seed"
            || a == "--count"
            || a == "--jobs"
            || a == "--format"
            || a == "--deny"
            || a == "--fuzz"
            || a == "--limit"
        {
            skip = true;
            continue;
        }
        // A lone "-" is a positional operand (stdin), not a flag.
        if a.starts_with('-') && a != "-" {
            continue;
        }
        let _ = i;
        out.push(a);
    }
    out
}

pub fn validate(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    if pos.len() > 2 || has_flag(args, "--jobs") {
        return validate_many(args, &pos);
    }
    let [schema_path, doc_path] = pos.as_slice() else {
        return Err("usage: bonxai validate <schema> <document.xml>... \
             [--jobs N] [--rules] [--matches] [--fast] [--lockstep] [--stats]"
            .into());
    };
    let schema = load_schema(schema_path)?;
    if has_flag(args, "--stats") {
        // One compile through a session cache; the per-stage counters
        // show what the structural-hash memo shared within the compile
        // (misses = constructions actually run).
        if let AnySchema::Bonxai(s) = &schema {
            let mut session = pipeline::SchemaCompiler::new();
            let _ = session.compile(&s.bxsd);
            let st = session.last_stats();
            println!(
                "cache stats (hits/misses): raw {}/{}  min {}/{}  product {}/{}  content {}/{}",
                st.raw.hits,
                st.raw.misses,
                st.min.hits,
                st.min.misses,
                st.product.hits,
                st.product.misses,
                st.content.hits,
                st.content.misses,
            );
        } else {
            println!("cache stats: (BonXai schemas only)");
        }
    }
    let show_rules = has_flag(args, "--rules");
    let show_matches = has_flag(args, "--matches");
    let opts = ValidateOptions {
        record_matches: show_rules || show_matches,
        force_lockstep: has_flag(args, "--lockstep"),
    };
    if has_flag(args, "--fast") && opts.force_lockstep {
        return Err("--fast and --lockstep are mutually exclusive".into());
    }
    if has_flag(args, "--stream") {
        return validate_stream(args, &schema, doc_path, opts);
    }
    let doc = load_document(doc_path)?;

    let valid = match &schema {
        AnySchema::Bonxai(s) => {
            if has_flag(args, "--fast") {
                // --fast demands the one-lookup-per-node product path;
                // refuse to run if the product exceeded its state budget.
                let compiled = CompiledBxsd::new(&s.bxsd);
                if compiled.product_states().is_none() {
                    return Err("--fast: the relevance product exceeds the state budget \
                         for this schema (Theorem 9); rerun without --fast"
                        .into());
                }
            }
            let report = s.validate_with(&doc, opts);
            for v in report.violations() {
                println!("violation: {}", v.kind);
            }
            for v in &report.constraints {
                println!("constraint violation: {v}");
            }
            if show_rules {
                println!("--- relevant rules ---");
                for node in doc.iter_elements() {
                    let m = &report.structure.matches[&node];
                    let rule = m
                        .relevant
                        .map(|i| s.ast.rules[s.rule_source[i]].pattern.source.clone())
                        .unwrap_or_else(|| "(unconstrained)".to_owned());
                    println!("  /{} ← {}", doc.anc_str(node).join("/"), rule);
                }
            }
            if show_matches {
                println!("--- matching rules ---");
                for node in doc.iter_elements() {
                    let m = &report.structure.matches[&node];
                    let list = m
                        .matching
                        .iter()
                        .map(|&i| s.ast.rules[s.rule_source[i]].pattern.source.clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    println!("  /{} ← [{}]", doc.anc_str(node).join("/"), list);
                }
            }
            report.is_valid()
        }
        AnySchema::Xsd(x) => {
            let report = xsd::validate(x, &doc);
            for v in &report.violations {
                println!("violation: {}", v.kind);
            }
            report.is_valid()
        }
        AnySchema::Dtd(d) => {
            let violations = xmltree::dtd::validate(d, &doc);
            for v in &violations {
                println!("violation: {}", v.kind);
            }
            violations.is_empty()
        }
    };
    if valid {
        println!("valid");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("INVALID");
        Ok(ExitCode::FAILURE)
    }
}

/// `validate --stream`: validates the document in O(depth) memory by
/// driving the relevance product over XML events, never building a tree.
/// The document operand may be `-` for stdin. Produces the exact report
/// tree validation would (same node order, same violations).
fn validate_stream(
    args: &[String],
    schema: &AnySchema,
    doc_path: &str,
    opts: ValidateOptions,
) -> Result<ExitCode, String> {
    let AnySchema::Bonxai(s) = schema else {
        return Err("--stream supports BonXai schemas only".into());
    };
    if opts.record_matches {
        return Err(
            "--stream cannot print per-element rules (they need the document tree); \
             drop --rules/--matches"
                .into(),
        );
    }
    if !s.ast.constraints.is_empty() {
        return Err(
            "--stream cannot check key/unique constraints (they need the document tree); \
             validate without --stream"
                .into(),
        );
    }
    let compiled = CompiledBxsd::new(&s.bxsd);
    if has_flag(args, "--fast") && compiled.product_states().is_none() {
        return Err("--fast: the relevance product exceeds the state budget \
             for this schema (Theorem 9); rerun without --fast"
            .into());
    }
    let report = if doc_path == "-" {
        let stdin = std::io::stdin();
        let mut reader = xmltree::XmlReader::from_reader(stdin.lock());
        compiled.validate_stream_with(&mut reader, opts)
    } else {
        let file = fs::File::open(doc_path).map_err(|e| format!("cannot read {doc_path}: {e}"))?;
        let mut reader = xmltree::XmlReader::from_reader(file);
        compiled.validate_stream_with(&mut reader, opts)
    }
    .map_err(|e| format!("{doc_path}: {e}"))?;
    for v in &report.violations {
        println!("violation: {}", v.kind);
    }
    if report.is_valid() {
        println!("valid");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("INVALID");
        Ok(ExitCode::FAILURE)
    }
}

/// `validate <schema> <doc.xml>... [--jobs N]`: multi-file batch mode.
/// Every file is validated in one streaming pass on the work-stealing
/// worker pool; per-file results are printed in input order (identical
/// output for every `--jobs` value) followed by a summary line. Exit
/// status is FAILURE if any file is invalid, unreadable, or malformed.
fn validate_many(args: &[String], pos: &[&String]) -> Result<ExitCode, String> {
    let [schema_path, doc_paths @ ..] = pos else {
        return Err(
            "usage: bonxai validate <schema> <document.xml>... [--jobs N] [--lockstep]".into(),
        );
    };
    if doc_paths.is_empty() {
        return Err("batch validation needs at least one document".into());
    }
    let AnySchema::Bonxai(s) = load_schema(schema_path)? else {
        return Err("batch validation supports BonXai schemas only".into());
    };
    if has_flag(args, "--rules") || has_flag(args, "--matches") {
        return Err(
            "batch validation cannot print per-element rules (they need the document \
             tree); drop --rules/--matches"
                .into(),
        );
    }
    if has_flag(args, "--stream") {
        return Err("batch validation always streams; drop --stream".into());
    }
    if !s.ast.constraints.is_empty() {
        return Err(
            "batch validation cannot check key/unique constraints (they need the \
             document tree); validate files one at a time"
                .into(),
        );
    }
    let opts = ValidateOptions {
        record_matches: false,
        force_lockstep: has_flag(args, "--lockstep"),
    };
    let compiled = CompiledBxsd::new(&s.bxsd);
    if has_flag(args, "--fast") {
        if opts.force_lockstep {
            return Err("--fast and --lockstep are mutually exclusive".into());
        }
        if compiled.product_states().is_none() {
            return Err("--fast: the relevance product exceeds the state budget \
                 for this schema (Theorem 9); rerun without --fast"
                .into());
        }
    }
    let jobs: usize = match flag_value(args, "--jobs") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("--jobs expects a positive integer")?,
        None => bonxai_core::batch::default_jobs(),
    };
    let paths: Vec<&str> = doc_paths.iter().map(|p| p.as_str()).collect();
    let reports = compiled.validate_paths(&paths, opts, jobs);
    let (mut n_valid, mut n_invalid, mut n_errors) = (0usize, 0usize, 0usize);
    for fr in &reports {
        match &fr.report {
            Ok(report) => {
                for v in &report.violations {
                    println!("{}: violation: {}", fr.path, v.kind);
                }
                if report.is_valid() {
                    n_valid += 1;
                    println!("{}: valid", fr.path);
                } else {
                    n_invalid += 1;
                    println!("{}: INVALID", fr.path);
                }
            }
            Err(msg) => {
                n_errors += 1;
                println!("{}: error: {msg}", fr.path);
            }
        }
    }
    println!(
        "{} files: {n_valid} valid, {n_invalid} invalid, {n_errors} errors",
        reports.len()
    );
    if n_invalid == 0 && n_errors == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

pub fn to_xsd(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai to-xsd <schema.bonxai> [-o out.xsd]".into());
    };
    let AnySchema::Bonxai(schema) = load_schema(schema_path)? else {
        return Err("to-xsd expects a BonXai schema".into());
    };
    let opts = TranslateOptions::default();
    let (x, path) = pipeline::bonxai_to_xsd(&schema, &opts);
    let text =
        xsd::emit_xsd(&x, schema.ast.target_namespace.as_deref()).map_err(|e| e.to_string())?;
    eprintln!("translated via {} ({} types)", path_name(path), x.n_types());
    emit_output(args, &text)?;
    Ok(ExitCode::SUCCESS)
}

pub fn from_xsd(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai from-xsd <schema.xsd> [-o out.bonxai]".into());
    };
    let AnySchema::Xsd(x) = load_schema(schema_path)? else {
        return Err("from-xsd expects an XML Schema".into());
    };
    let opts = TranslateOptions::default();
    let (schema, path) = pipeline::xsd_to_bonxai(&x, &opts);
    eprintln!(
        "translated via {} ({} rules)",
        path_name(path),
        schema.bxsd.n_rules()
    );
    emit_output(args, &schema.to_source())?;
    Ok(ExitCode::SUCCESS)
}

pub fn from_dtd(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai from-dtd <schema.dtd> --root <name> [-o out.bonxai]".into());
    };
    let root = flag_value(args, "--root")
        .ok_or("from-dtd requires --root <name> (DTDs do not declare roots)")?;
    let AnySchema::Dtd(dtd) = load_schema(schema_path)? else {
        return Err("from-dtd expects a DTD".into());
    };
    let schema = dtd_import::dtd_to_bonxai(&dtd, &[root.as_str()]).map_err(|e| e.to_string())?;
    emit_output(args, &schema.to_source())?;
    Ok(ExitCode::SUCCESS)
}

pub fn analyze(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai analyze <schema>".into());
    };
    let opts = TranslateOptions::default();
    let dfa_schema = match load_schema(schema_path)? {
        AnySchema::Bonxai(s) => {
            println!("formalism:       BonXai");
            println!("rules:           {}", s.bxsd.n_rules());
            println!("size:            {}", s.bxsd.size());
            println!("element names:   {}", s.bxsd.ename.len());
            println!("constraints:     {}", s.ast.constraints.len());
            match bonxai_core::translate::classify_bxsd(&s.bxsd) {
                Some((_, k)) => println!("fragment:        suffix-based (k = {k})"),
                None => println!("fragment:        general (not suffix-based)"),
            }
            bonxai_core::translate::bxsd_to_dfa_xsd(&s.bxsd)
        }
        AnySchema::Xsd(x) => {
            println!("formalism:       XML Schema");
            println!("types:           {}", x.n_types());
            println!("size:            {}", x.size());
            println!("element names:   {}", x.ename.len());
            let minimized = xsd::minimize_types(&x);
            println!("minimal types:   {}", minimized.n_types());
            match bonxai_core::lint::xsd_fragment(&x) {
                Some(k) => println!("fragment:        suffix-based (k = {k})"),
                None => println!("fragment:        general (not suffix-based)"),
            }
            bonxai_core::translate::xsd_to_dfa_xsd(&x)
        }
        AnySchema::Dtd(d) => {
            println!("formalism:       DTD");
            println!("elements:        {}", d.elements.len());
            println!("size:            {}", d.size());
            println!("fragment:        1-suffix (DTDs are context-insensitive)");
            return Ok(ExitCode::SUCCESS);
        }
    };
    match xsd::minimal_k(&dfa_schema, 5, 2_000_000) {
        Some(k) => println!("k-suffix:        yes, minimal k = {k}"),
        None => println!("k-suffix:        no (for k ≤ 5)"),
    }
    println!("type automaton:  {} states", dfa_schema.n_states());
    let _ = opts;
    Ok(ExitCode::SUCCESS)
}

pub fn sample(args: &[String]) -> Result<ExitCode, String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai sample <schema> [--seed N] [--count N]".into());
    };
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(0);
    let count: usize = flag_value(args, "--count")
        .map(|s| s.parse().map_err(|_| "bad --count"))
        .transpose()?
        .unwrap_or(1);
    let dtd_root = flag_value(args, "--root");
    let dfa_schema = to_dfa_schema(load_schema(schema_path)?, dtd_root.as_deref())?;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..count {
        match bonxai_gen::sample_document(&dfa_schema, &bonxai_gen::DocConfig::default(), &mut rng)
        {
            Some(doc) => print!("{}", xmltree::to_string_pretty(&doc)),
            None => return Err("the schema admits no finite conforming document".into()),
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Converts any loaded schema to its DFA-based XSD form for comparison.
/// For DTDs (which declare no roots), `dtd_root` names the root; by
/// default every declared element may be a root.
fn to_dfa_schema(schema: AnySchema, dtd_root: Option<&str>) -> Result<xsd::DfaXsd, String> {
    Ok(match schema {
        AnySchema::Bonxai(s) => bonxai_core::translate::bxsd_to_dfa_xsd(&s.bxsd),
        AnySchema::Xsd(x) => bonxai_core::translate::xsd_to_dfa_xsd(&x),
        AnySchema::Dtd(d) => {
            let roots: Vec<String> = match dtd_root {
                Some(r) => vec![r.to_owned()],
                None => d.elements.keys().cloned().collect(),
            };
            let roots: Vec<&str> = roots.iter().map(String::as_str).collect();
            let s = dtd_import::dtd_to_bonxai(&d, &roots).map_err(|e| e.to_string())?;
            bonxai_core::translate::bxsd_to_dfa_xsd(&s.bxsd)
        }
    })
}

/// Converts any loaded schema to its BXSD core for semantic analysis.
/// XSDs go through the paper's XSD→BonXai translation; DTDs through the
/// Figure 2 import (with `dtd_root`, or every declared element, as root).
fn to_bxsd(schema: AnySchema, dtd_root: Option<&str>) -> Result<bonxai_core::Bxsd, String> {
    Ok(match schema {
        AnySchema::Bonxai(s) => s.bxsd,
        AnySchema::Xsd(x) => {
            pipeline::xsd_to_bonxai(&x, &TranslateOptions::default())
                .0
                .bxsd
        }
        AnySchema::Dtd(d) => {
            let roots: Vec<String> = match dtd_root {
                Some(r) => vec![r.to_owned()],
                None => d.elements.keys().cloned().collect(),
            };
            let roots: Vec<&str> = roots.iter().map(String::as_str).collect();
            dtd_import::dtd_to_bonxai(&d, &roots)
                .map_err(|e| e.to_string())?
                .bxsd
        }
    })
}

/// JSON string literal with the escapes RFC 8259 requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The deterministic (timing-free) part of a diff report as JSON —
/// byte-identical for any `--jobs` value, diffable in CI.
fn render_diff_json(a: &str, b: &str, report: &bonxai_core::DiffReport, limit: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"a\": {},\n", json_string(a)));
    out.push_str(&format!("  \"b\": {},\n", json_string(b)));
    out.push_str(&format!(
        "  \"evolution\": {},\n",
        json_string(report.evolution.as_str())
    ));
    out.push_str(&format!("  \"a_only\": {},\n", report.a_only));
    out.push_str(&format!("  \"b_only\": {},\n", report.b_only));
    out.push_str(&format!(
        "  \"stats\": {{ \"contexts_a\": {}, \"contexts_b\": {}, \"pairs\": {}, \"dropped\": {} }},\n",
        report.stats.contexts_a, report.stats.contexts_b, report.stats.pairs, report.stats.dropped
    ));
    let shown = &report.witnesses[..report.witnesses.len().min(limit)];
    if shown.is_empty() {
        out.push_str("  \"witnesses\": []\n");
    } else {
        out.push_str("  \"witnesses\": [\n");
        for (i, w) in shown.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"direction\": {},\n",
                json_string(w.direction.as_str())
            ));
            out.push_str(&format!(
                "      \"path\": {},\n",
                json_string(&w.path_display())
            ));
            out.push_str(&format!(
                "      \"kind\": {},\n",
                json_string(w.kind.as_str())
            ));
            out.push_str(&format!(
                "      \"message\": {},\n",
                json_string(&w.message)
            ));
            out.push_str(&format!(
                "      \"document\": {}\n",
                json_string(&w.document)
            ));
            out.push_str(if i + 1 < shown.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

/// The human-readable diff report.
fn render_diff_text(a: &str, b: &str, report: &bonxai_core::DiffReport, limit: usize) -> String {
    let mut out = String::new();
    match report.evolution {
        bonxai_core::Evolution::Equivalent => {
            out.push_str("equivalent: the schemas accept the same documents\n");
        }
        ev => {
            out.push_str(&format!(
                "NOT equivalent ({}): {} document(s) only in {a}, {} only in {b}\n",
                ev.as_str(),
                report.a_only,
                report.b_only
            ));
        }
    }
    let shown = &report.witnesses[..report.witnesses.len().min(limit)];
    for w in shown {
        let schema = match w.direction {
            bonxai_core::Direction::OnlyInA => a,
            bonxai_core::Direction::OnlyInB => b,
        };
        out.push_str(&format!(
            "\n[{}] at {} ({}): {}\n  valid only against {schema}:\n  {}\n",
            w.direction.as_str(),
            w.path_display(),
            w.kind.as_str(),
            w.message,
            w.document
        ));
    }
    if report.witnesses.len() > shown.len() {
        out.push_str(&format!(
            "\n({} further witness(es) suppressed; raise --limit to see them)\n",
            report.witnesses.len() - shown.len()
        ));
    }
    if report.stats.dropped > 0 {
        out.push_str(&format!(
            "note: {} unverified candidate(s) dropped\n",
            report.stats.dropped
        ));
    }
    out
}

/// `diff <schema1> <schema2>`: decide inclusion/equivalence of the two
/// schemas' document sets via the joint ancestor-context construction,
/// printing verified witness documents that validate against exactly one
/// of them. Exit status: 0 = equivalent, 1 = the schemas differ,
/// 2 = error.
pub fn diff(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [a_path, b_path] = pos.as_slice() else {
        return Err(
            "usage: bonxai diff <schema1> <schema2> [--format text|json] [--limit N] \
             [--jobs N] [--no-cache] [--root <name>]"
                .into(),
        );
    };
    let dtd_root = flag_value(args, "--root");
    let a = to_bxsd(load_schema(a_path)?, dtd_root.as_deref())?;
    let b = to_bxsd(load_schema(b_path)?, dtd_root.as_deref())?;
    let format = flag_value(args, "--format").unwrap_or_else(|| "text".to_string());
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?} (text|json)"));
    }
    let limit = match flag_value(args, "--limit") {
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| "--limit expects a non-negative integer")?,
        None => 10,
    };
    let jobs = bonxai_core::clamp_jobs(match flag_value(args, "--jobs") {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--jobs expects a positive integer")?,
        None => 0,
    });
    let opts = bonxai_core::AnalysisOptions {
        jobs,
        ..bonxai_core::AnalysisOptions::default()
    };
    let mut cache = relang::AutomataCache::new();
    let cache = (!has_flag(args, "--no-cache")).then_some(&mut cache);
    let report = bonxai_core::diff_bxsd(&a, &b, &opts, cache).map_err(|e| e.to_string())?;
    let rendered = if format == "json" {
        render_diff_json(a_path, b_path, &report, limit)
    } else {
        render_diff_text(a_path, b_path, &report, limit)
    };
    print!("{rendered}");
    if report.equivalent() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

/// `sat <schema>`: whole-schema satisfiability — does any document
/// conform? Prints a minimal conforming document when one exists and
/// every reachable-but-unsatisfiable rule context. Exit status:
/// 0 = satisfiable, 1 = unsatisfiable, 2 = error.
pub fn sat(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai sat <schema> [--root <name>]".into());
    };
    let dtd_root = flag_value(args, "--root");
    let bxsd = to_bxsd(load_schema(schema_path)?, dtd_root.as_deref())?;
    let mut cache = relang::AutomataCache::new();
    let report = bonxai_core::analyze_sat(
        &bxsd,
        &bonxai_core::AnalysisOptions::default(),
        Some(&mut cache),
    )
    .map_err(|e| e.to_string())?;
    for u in &report.unsat_rules {
        println!(
            "unsatisfiable in context: rule {} at /{}",
            u.rule + 1,
            u.path.join("/")
        );
    }
    match &report.witness {
        Some(doc) => {
            println!("satisfiable; minimal conforming document:");
            print!("{doc}");
            if !doc.ends_with('\n') {
                println!();
            }
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!("UNSATISFIABLE: no document conforms to {schema_path}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `check <schema>`: parse, then run the cheap structural lints
/// (undefined references, UPA, vacuous content models) and report every
/// problem with its source span. Exit status is nonzero on any
/// error-level finding — not just the first, as a plain parse would be.
pub fn check(args: &[String]) -> Result<ExitCode, String> {
    use bonxai_core::lint::{self, LintOptions, Severity};
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err("usage: bonxai check <schema>".into());
    };
    let text =
        fs::read_to_string(schema_path).map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let opts = LintOptions {
        structural_only: true,
        ..LintOptions::default()
    };
    let (report, ok_line) = match detect_kind(schema_path, &text) {
        "bonxai" => {
            let report =
                lint::lint_source(&text, &opts).map_err(|e| format!("{schema_path}: {e}"))?;
            let ast = bonxai_core::lang::parse_schema(&text).expect("parsed above");
            (
                report,
                format!("OK: BonXai schema, {} rules", ast.rules.len()),
            )
        }
        "xsd" => {
            let x = xsd::parse_xsd_unchecked(&text).map_err(|e| format!("{schema_path}: {e}"))?;
            let report = lint::lint_xsd(&x, &opts);
            (report, format!("OK: XML Schema, {} types", x.n_types()))
        }
        _ => {
            let d = xmltree::dtd::parse_dtd(&text).map_err(|e| format!("{schema_path}: {e}"))?;
            (
                bonxai_core::lint::LintReport::default(),
                format!("OK: DTD, {} elements", d.elements.len()),
            )
        }
    };
    if report.diagnostics.is_empty() {
        println!("{ok_line}");
        return Ok(ExitCode::SUCCESS);
    }
    print!("{}", lint::render_text(&report, schema_path));
    if report.max_severity() >= Some(Severity::Error) {
        Ok(ExitCode::FAILURE)
    } else {
        println!("{ok_line}");
        Ok(ExitCode::SUCCESS)
    }
}

/// Lints one schema file, sharing `cache` across the semantic checks.
fn lint_one(
    schema_path: &str,
    opts: &bonxai_core::lint::LintOptions,
    cache: &mut relang::AutomataCache,
) -> Result<bonxai_core::lint::LintReport, String> {
    use bonxai_core::lint;
    let text =
        fs::read_to_string(schema_path).map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    match detect_kind(schema_path, &text) {
        "bonxai" => lint::lint_source_with(&text, opts, Some(cache))
            .map_err(|e| format!("{schema_path}: {e}")),
        "xsd" => {
            let x = xsd::parse_xsd_unchecked(&text).map_err(|e| format!("{schema_path}: {e}"))?;
            Ok(lint::lint_xsd(&x, opts))
        }
        _ => {
            // DTDs have no ancestor patterns of their own: convert with
            // every declared element as a root, then lint the result.
            let d = xmltree::dtd::parse_dtd(&text).map_err(|e| format!("{schema_path}: {e}"))?;
            let roots: Vec<&str> = d.elements.keys().map(String::as_str).collect();
            let s = dtd_import::dtd_to_bonxai(&d, &roots).map_err(|e| e.to_string())?;
            Ok(lint::lint_ast_with(&s.ast, opts, Some(cache)))
        }
    }
}

/// `lint <schema>`: the full static-analysis pass — dead and unreachable
/// rules, UPA violations with witnesses, vacuous content, unconstrained
/// elements, and (with --notes) fragment/blow-up advisories. Exit status
/// is nonzero when a finding reaches the --deny level (default: error).
///
/// `lint <dir>` lints every `.bonxai` / `.xsd` / `.dtd` file under the
/// directory (sorted, non-recursive) on the work-stealing pool; output
/// is concatenated in path order and byte-identical for every `--jobs`
/// value.
pub fn lint(args: &[String]) -> Result<ExitCode, String> {
    use bonxai_core::lint::{self, LintOptions, Severity};
    let pos = positional(args);
    let [schema_path] = pos.as_slice() else {
        return Err(
            "usage: bonxai lint <schema|dir> [--format text|json] [--deny note|warning|error] \
             [--notes] [--jobs N]"
                .into(),
        );
    };
    let format = flag_value(args, "--format").unwrap_or_else(|| "text".to_string());
    if format != "text" && format != "json" {
        return Err(format!("--format expects text or json, got {format:?}"));
    }
    let deny: Severity = match flag_value(args, "--deny") {
        Some(s) => s.parse()?,
        None => Severity::Error,
    };
    let opts = LintOptions {
        include_notes: has_flag(args, "--notes") || deny == Severity::Note,
        ..LintOptions::default()
    };
    if fs::metadata(schema_path)
        .map(|m| m.is_dir())
        .unwrap_or(false)
    {
        return lint_dir(schema_path, &format, deny, &opts, args);
    }
    let mut cache = relang::AutomataCache::new();
    let report = lint_one(schema_path, &opts, &mut cache)?;
    match format.as_str() {
        "json" => print!("{}", lint::render_json(&report, schema_path)),
        _ => print!("{}", lint::render_text(&report, schema_path)),
    }
    if report.max_severity() >= Some(deny) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Multi-schema lint: every schema in `dir`, analyzed in parallel on the
/// batch pool. Each worker job owns its own [`relang::AutomataCache`]
/// (shared DFAs within a schema; the cache is not `Sync` by design), and
/// rendering happens on the calling thread in path order, so the bytes
/// printed are independent of worker count and scheduling.
fn lint_dir(
    dir: &str,
    format: &str,
    deny: bonxai_core::lint::Severity,
    opts: &bonxai_core::lint::LintOptions,
    args: &[String],
) -> Result<ExitCode, String> {
    use bonxai_core::lint;
    let jobs = bonxai_core::clamp_jobs(match flag_value(args, "--jobs") {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--jobs expects a positive integer")?,
        None => 0,
    });
    let mut files: Vec<String> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let ext = path.extension()?.to_str()?.to_ascii_lowercase();
            if path.is_file() && matches!(ext.as_str(), "bonxai" | "xsd" | "dtd") {
                Some(path.display().to_string())
            } else {
                None
            }
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .bonxai/.xsd/.dtd schemas in {dir}"));
    }
    let results: Vec<(String, Result<lint::LintReport, String>)> =
        bonxai_core::map_indexed(files, jobs, |path| {
            let mut cache = relang::AutomataCache::new();
            let report = lint_one(&path, opts, &mut cache);
            (path, report)
        });
    let mut failed = false;
    let mut rendered = Vec::with_capacity(results.len());
    for (path, result) in &results {
        match result {
            Err(e) => {
                failed = true;
                eprintln!("{e}");
            }
            Ok(report) => {
                if report.max_severity() >= Some(deny) {
                    failed = true;
                }
                rendered.push(match format {
                    "json" => lint::render_json(report, path),
                    _ => lint::render_text(report, path),
                });
            }
        }
    }
    if format == "json" {
        // A JSON array of the per-file report objects, each reindented
        // two spaces so the stream stays one valid document.
        let mut out = String::from("[\n");
        for (i, r) in rendered.iter().enumerate() {
            for line in r.trim_end().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
            if i + 1 < rendered.len() {
                out.truncate(out.trim_end().len());
                out.push_str(",\n");
            }
        }
        out.push_str("]\n");
        print!("{out}");
    } else {
        for r in &rendered {
            print!("{r}");
        }
    }
    if failed {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn path_name(p: TranslatePath) -> String {
    match p {
        TranslatePath::Fast(k) => format!("the k-suffix fast path (k = {k})"),
        TranslatePath::General => "the general algorithm".to_owned(),
    }
}

/// `conform <dir>`: the differential conformance driver. Every
/// `valid_*.xml` / `invalid_*.xml` under `dir` (one corpus directory
/// with a `schema.bonxai`, or a directory of such directories) runs
/// through the oracle and all four fast validation paths under every
/// lexer engine and byte source; any disagreement, or a verdict that
/// contradicts the filename, fails the run. With `--fuzz N` it then
/// fuzzes the stack for `N` iterations (`--seed S`, default 0),
/// treating any panic or divergence as a failure and printing the
/// shrunk reproducer.
pub fn conform(args: &[String]) -> Result<ExitCode, String> {
    use bonxai_core::conformance;
    let pos = positional(args);
    let [dir] = pos.as_slice() else {
        return Err("usage: bonxai conform <dir> [--fuzz N] [--seed S]".into());
    };
    let mut suites: Vec<std::path::PathBuf> = Vec::new();
    let root = std::path::Path::new(dir.as_str());
    if root.join("schema.bonxai").exists() {
        suites.push(root.to_path_buf());
    } else {
        let mut subdirs: Vec<_> = fs::read_dir(root)
            .map_err(|e| format!("cannot read {dir}: {e}"))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join("schema.bonxai").exists())
            .collect();
        subdirs.sort();
        suites.extend(subdirs);
    }
    if suites.is_empty() {
        return Err(format!(
            "{dir}: no schema.bonxai found (directly or in subdirectories)"
        ));
    }
    let mut cases = 0usize;
    let mut failures = 0usize;
    for suite in &suites {
        let schema_path = suite.join("schema.bonxai");
        let text = fs::read_to_string(&schema_path)
            .map_err(|e| format!("cannot read {}: {e}", schema_path.display()))?;
        let schema = bonxai_core::BonxaiSchema::parse(&text)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        let mut docs: Vec<_> = fs::read_dir(suite)
            .map_err(|e| format!("cannot read {}: {e}", suite.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "xml"))
            .collect();
        docs.sort();
        for doc in docs {
            let name = doc
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let expect = if name.starts_with("valid_") {
                Some(true)
            } else if name.starts_with("invalid_") {
                Some(false)
            } else {
                None
            };
            let input = fs::read_to_string(&doc)
                .map_err(|e| format!("cannot read {}: {e}", doc.display()))?;
            let outcome = conformance::check(&schema.bxsd, &input, true);
            cases += 1;
            let verdict = outcome.verdict();
            let mut bad = Vec::new();
            for d in &outcome.divergences {
                bad.push(format!("divergence {d}"));
            }
            match (expect, verdict) {
                (Some(want), Some(got)) if want != got => bad.push(format!(
                    "all paths agree on {} but the filename expects {}",
                    if got { "valid" } else { "invalid" },
                    if want { "valid" } else { "invalid" },
                )),
                (_, None) => bad.push("document is malformed, not a conformance verdict".into()),
                _ => {}
            }
            if bad.is_empty() {
                println!(
                    "ok   {} [{}]",
                    doc.display(),
                    if verdict == Some(true) {
                        "valid"
                    } else {
                        "invalid"
                    },
                );
            } else {
                failures += 1;
                println!("FAIL {}", doc.display());
                for b in &bad {
                    println!("     {b}");
                }
            }
        }
    }
    let fuzz_n: usize = match flag_value(args, "--fuzz") {
        Some(s) => s.parse().map_err(|_| "--fuzz expects an iteration count")?,
        None => 0,
    };
    if fuzz_n > 0 {
        let seed: u64 = match flag_value(args, "--seed") {
            Some(s) => s.parse().map_err(|_| "--seed expects an integer")?,
            None => 0,
        };
        // Panics are a fuzz signal, caught and reported by the harness;
        // silence the default hook's backtrace spam while it runs.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let vreport = bonxai_gen::fuzz_validation(seed, fuzz_n);
        let dreport = bonxai_gen::fuzz_dtd(seed, fuzz_n);
        let ereport = bonxai_gen::fuzz_edits(seed, fuzz_n);
        std::panic::set_hook(hook);
        for (target, report) in [
            ("validation", &vreport),
            ("dtd", &dreport),
            ("edit-replay", &ereport),
        ] {
            println!(
                "fuzz {target}: {} iterations (seed {seed}): {} malformed, {} valid, {} invalid, {} finding(s)",
                report.iterations, report.rejected, report.valid, report.invalid,
                report.findings.len(),
            );
            for f in &report.findings {
                failures += 1;
                println!("FAIL fuzz {target} iteration {}", f.iteration);
                if let Some(p) = &f.panic {
                    println!("     panic: {p}");
                }
                for d in &f.divergences {
                    println!("     divergence {d}");
                }
                println!("     reproducer: {:?}", f.shrunk);
            }
        }
    }
    println!(
        "{cases} corpus case(s), {failures} failure(s){}",
        if fuzz_n > 0 {
            " (including fuzz findings)"
        } else {
            ""
        },
    );
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
