//! `bonxai` — the command-line front end, mirroring the tool described in
//! the paper's reference \[19\]: parse BonXai schemas, validate XML against
//! them (highlighting matching rules), and translate back and forth
//! between BonXai, XML Schema, and DTD.

use std::process::ExitCode;

mod commands;

const USAGE: &str = "\
bonxai — the BonXai schema language tool

USAGE:
    bonxai <COMMAND> [ARGS]

COMMANDS:
    validate <schema> <document.xml>... [--jobs N]
        Validate XML documents. The schema may be .bonxai, .xsd, or
        .dtd (detected by extension or content). Prints violations, or
        with --rules the relevant BonXai rule for every element.
        --fast requires the product-automaton path (fails on schemas
        whose relevance product exceeds the state budget); --lockstep
        forces the reference evaluator. With --stream (BonXai schemas)
        the document — a file, or `-` for stdin — is validated in one
        streaming pass using O(depth) memory, never building a tree;
        the report is identical to tree validation. With several
        documents (or --jobs), a BonXai schema validates all of them
        on a work-stealing pool of N workers (default: one per core),
        each file streamed; per-file reports print in input order with
        a summary line, and the exit status is nonzero if any file is
        invalid, unreadable, or malformed.

    to-xsd <schema.bonxai> [-o out.xsd]
        Compile a BonXai schema to XML Schema.

    from-xsd <schema.xsd> [-o out.bonxai]
        Translate an XML Schema to BonXai.

    from-dtd <schema.dtd> --root <name> [-o out.bonxai]
        Convert a DTD to BonXai (roots must be named; DTDs do not
        declare them).

    diff <schema1> <schema2> [--format text|json] [--limit N] [--jobs N]
         [--no-cache] [--root <name>]
        Decide whether two schemas (any mix of .bonxai/.xsd/.dtd) accept
        the same documents. Differences are reported as complete witness
        documents, each verified to validate against exactly one of the
        two schemas, found by comparing the selected content models at
        every realizable ancestor context (child sequences, text value
        spaces, attributes). JSON output includes the evolution
        classification (equivalent / backward_compatible /
        forward_compatible / incomparable, schema1 playing the old
        role). Exit status: 0 = equivalent, 1 = the schemas differ,
        2 = error.

    sat <schema> [--root <name>]
        Whole-schema satisfiability: does any document conform? Prints a
        minimal conforming document when one exists, and every rule that
        is reachable but admits no finite conforming subtree in context.
        Exit status: 0 = satisfiable, 1 = unsatisfiable, 2 = error.

    analyze <schema>
        Report schema statistics: rules/types, alphabet, whether the
        schema is k-suffix (and the minimal k up to 5), and which
        translation path conversions would take.

    sample <schema> [--seed N] [--count N]
        Generate random documents conforming to the schema.

    check <schema>
        Parse a schema and run the cheap structural lints (undefined
        references, UPA, vacuous content models), reporting every
        problem with its source span. Nonzero exit on any error.

    conform <dir> [--fuzz N] [--seed S]
        Differential conformance: every valid_*.xml / invalid_*.xml in
        <dir> (a corpus directory holding a schema.bonxai, or a
        directory of such directories, e.g. data/conformance) is
        validated by the reference oracle and all four fast paths
        (tree/stream × product/lock-step) under every lexer engine and
        byte source. Any disagreement between paths — verdict,
        violation list, error position, or rule matches — fails the
        run, as does a verdict contradicting the filename. With
        --fuzz N, additionally runs N iterations of structure-aware
        byte fuzzing (deterministic in --seed, default 0) over the
        validation stack and the DTD parser; panics and divergences
        are reported with shrunk reproducers.

    lint <schema|dir> [--format text|json] [--deny <level>] [--notes]
         [--jobs N]
        Full static analysis: dead rules (shadowed by later rules, with
        a witness path), unreachable rules, UPA violations with a
        shortest ambiguous word, vacuous content models, unconstrained
        element names, and — with --notes — fragment / blow-up
        advisories (BX007/BX008). Stable diagnostic codes BX001…BX010.
        Given a directory, lints every .bonxai/.xsd/.dtd file in it in
        parallel (--jobs workers, clamped to the core count) with
        byte-identical, path-ordered output for any worker count.
        Exit status is nonzero when a finding reaches the --deny level
        (note|warning|error; default error).

OPTIONS:
    -o <file>    write output to a file instead of stdout
    --rules      (validate) print the relevant rule per element
    --matches    (validate) print all matching rules per element
    --fast       (validate) require the product-automaton fast path
    --lockstep   (validate) force the lock-step reference evaluator
    --stream     (validate) stream the document in O(depth) memory
    --jobs N     (validate, lint) worker count, clamped to core count
    --seed N     (sample) RNG seed (default 0)
    --count N    (sample) number of documents (default 1)
    --format F   (lint, diff) output format: text (default) or json
    --deny L     (lint) fail at this severity: note, warning, error
    --notes      (lint) include note-level advisories
    --limit N    (diff) show at most N witnesses (default 10)
    --no-cache   (diff) disable the shared automata cache
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "validate" => commands::validate(rest),
        "to-xsd" => commands::to_xsd(rest),
        "from-xsd" => commands::from_xsd(rest),
        "from-dtd" => commands::from_dtd(rest),
        "analyze" => commands::analyze(rest),
        "diff" => commands::diff(rest),
        "sat" => commands::sat(rest),
        "sample" => commands::sample(rest),
        "check" => commands::check(rest),
        "lint" => commands::lint(rest),
        "conform" => commands::conform(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}; try `bonxai help`")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
