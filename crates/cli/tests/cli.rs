//! End-to-end tests of the `bonxai` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn data(name: &str) -> String {
    let root: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", ".."].iter().collect();
    root.join("data").join(name).to_string_lossy().into_owned()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bonxai"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn validate_accepts_figure1_under_all_schemas() {
    for schema in [
        "figure2.dtd",
        "figure3.xsd",
        "figure4.bonxai",
        "figure5.bonxai",
    ] {
        let out = run(&["validate", &data(schema), &data("figure1_document.xml")]);
        assert!(out.status.success(), "{schema}: {}", stdout(&out));
        assert!(stdout(&out).contains("valid"));
    }
}

#[test]
fn validate_rejects_and_reports() {
    let tmp = std::env::temp_dir().join("bonxai_cli_bad.xml");
    std::fs::write(&tmp, "<document><content/></document>").expect("writes");
    let out = run(&[
        "validate",
        &data("figure5.bonxai"),
        tmp.to_str().expect("utf8"),
    ]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("INVALID"), "{text}");
    assert!(text.contains("violation"), "{text}");
}

#[test]
fn validate_rules_mode_prints_relevant_rules() {
    let out = run(&[
        "validate",
        &data("figure5.bonxai"),
        &data("figure1_document.xml"),
        "--rules",
    ]);
    let text = stdout(&out);
    assert!(text.contains("relevant rules"), "{text}");
    assert!(text.contains("template//section"), "{text}");
}

#[test]
fn validate_fast_and_lockstep_agree() {
    for extra in [&["--fast"][..], &["--lockstep"][..]] {
        let mut args = vec!["validate"];
        let schema = data("figure5.bonxai");
        let doc = data("figure1_document.xml");
        args.push(&schema);
        args.push(&doc);
        args.extend_from_slice(extra);
        let out = run(&args);
        assert!(out.status.success(), "{extra:?}: {}", stdout(&out));
        assert!(stdout(&out).contains("valid"), "{extra:?}");
    }
    // mutually exclusive
    let out = run(&[
        "validate",
        &data("figure5.bonxai"),
        &data("figure1_document.xml"),
        "--fast",
        "--lockstep",
    ]);
    assert!(!out.status.success());
}

#[test]
fn validate_matches_mode_prints_all_matching_rules() {
    let out = run(&[
        "validate",
        &data("figure5.bonxai"),
        &data("figure1_document.xml"),
        "--matches",
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("matching rules"), "{text}");
    // every element line shows its matching-rule set
    assert!(
        text.lines()
            .any(|l| l.contains("/document/template/section ") && l.contains("← [")),
        "{text}"
    );
}

#[test]
fn validate_stream_agrees_with_tree_validation() {
    // valid document: same verdict from file and from stdin
    let out = run(&[
        "validate",
        &data("figure5.bonxai"),
        &data("figure1_document.xml"),
        "--stream",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("valid"));

    let xml = std::fs::read(data("figure1_document.xml")).expect("reads");
    let out = {
        use std::io::Write;
        use std::process::Stdio;
        let mut child = Command::new(env!("CARGO_BIN_EXE_bonxai"))
            .args(["validate", &data("figure5.bonxai"), "-", "--stream"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs");
        child
            .stdin
            .take()
            .expect("piped")
            .write_all(&xml)
            .expect("writes");
        child.wait_with_output().expect("binary exits")
    };
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("valid"));

    // invalid document: identical violation lines, streamed and not
    let tmp = std::env::temp_dir().join("bonxai_cli_stream_bad.xml");
    std::fs::write(&tmp, "<document><content><zzz/>text</content></document>").expect("writes");
    let tmp = tmp.to_str().expect("utf8");
    let tree = run(&["validate", &data("figure5.bonxai"), tmp]);
    let streamed = run(&["validate", &data("figure5.bonxai"), tmp, "--stream"]);
    assert!(!streamed.status.success());
    assert_eq!(stdout(&streamed), stdout(&tree));
}

#[test]
fn validate_stream_flag_conflicts_are_errors() {
    let args_base = [
        "validate",
        &data("figure5.bonxai"),
        &data("figure1_document.xml"),
        "--stream",
    ];
    for extra in ["--rules", "--matches"] {
        let mut args: Vec<&str> = args_base.to_vec();
        args.push(extra);
        let out = run(&args);
        assert!(!out.status.success(), "{extra}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--stream"),
            "{extra}"
        );
    }
    // non-BonXai schemas have no streaming path
    let out = run(&[
        "validate",
        &data("figure3.xsd"),
        &data("figure1_document.xml"),
        "--stream",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("BonXai"));
}

#[test]
fn to_xsd_from_xsd_roundtrip() {
    let tmp = std::env::temp_dir().join("bonxai_cli_out.xsd");
    let out = run(&[
        "to-xsd",
        &data("figure4.bonxai"),
        "-o",
        tmp.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());
    let out = run(&[
        "validate",
        tmp.to_str().expect("utf8"),
        &data("figure1_document.xml"),
    ]);
    assert!(out.status.success(), "{}", stdout(&out));

    let out = run(&["from-xsd", tmp.to_str().expect("utf8")]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("grammar {"));
}

#[test]
fn from_dtd_requires_root() {
    let out = run(&["from-dtd", &data("figure2.dtd")]);
    assert!(!out.status.success());
    let out = run(&["from-dtd", &data("figure2.dtd"), "--root", "document"]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("global { document }"));
}

#[test]
fn analyze_reports_fragment() {
    let out = run(&["analyze", &data("figure4.bonxai")]);
    let text = stdout(&out);
    assert!(text.contains("suffix-based (k = 1)"), "{text}");
    let out = run(&["analyze", &data("figure3.xsd")]);
    let text = stdout(&out);
    assert!(text.contains("k-suffix:        no"), "{text}");
}

#[test]
fn sample_produces_valid_documents() {
    let out = run(&[
        "sample",
        &data("figure5.bonxai"),
        "--seed",
        "1",
        "--count",
        "1",
    ]);
    assert!(out.status.success());
    let doc_text = stdout(&out);
    // the sampled document validates
    let tmp = std::env::temp_dir().join("bonxai_cli_sample.xml");
    std::fs::write(&tmp, &doc_text).expect("writes");
    let out = run(&[
        "validate",
        &data("figure5.bonxai"),
        tmp.to_str().expect("utf8"),
    ]);
    assert!(
        out.status.success(),
        "sample:\n{doc_text}\n{}",
        stdout(&out)
    );
}

#[test]
fn check_reports_formalism() {
    let out = run(&["check", &data("figure4.bonxai")]);
    assert!(stdout(&out).contains("BonXai schema"));
    let out = run(&["check", &data("figure3.xsd")]);
    assert!(stdout(&out).contains("XML Schema"));
    let out = run(&["check", &data("figure2.dtd")]);
    assert!(stdout(&out).contains("DTD"));
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn diff_decides_equivalence() {
    // Figure 3 (XSD) and Figure 5 (BonXai) are equivalent
    let out = run(&["diff", &data("figure3.xsd"), &data("figure5.bonxai")]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("equivalent"));
    // Figure 4 and Figure 5 are not, with a witness
    let out = run(&["diff", &data("figure4.bonxai"), &data("figure5.bonxai")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("NOT equivalent"), "{text}");
    assert!(text.contains("at /document"), "{text}");
    // The DTD and Figure 4 agree on structure, but DTD CDATA attributes
    // admit values Figure 4's xs:integer facets reject — the value-space
    // probes must surface that as a DTD-only witness document.
    let out = run(&[
        "diff",
        &data("figure2.dtd"),
        &data("figure4.bonxai"),
        "--root",
        "document",
    ]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("forward_compatible"), "{text}");
    assert!(text.contains("xs:integer"), "{text}");
}
