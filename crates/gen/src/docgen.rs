//! Sampling conforming documents from a DFA-based XSD.
//!
//! Used by the validation benchmarks and the round-trip property tests:
//! translations are checked not only on automata but on actual documents
//! drawn from the schema's language.

use rand::prelude::*;
use relang::{Dfa, Sym};
use xmltree::{Document, NodeId};
use xsd::{DfaXsd, SimpleType};

/// Tuning knobs for document generation.
#[derive(Clone, Copy, Debug)]
pub struct DocConfig {
    /// Soft cap on the number of element nodes.
    pub max_nodes: usize,
    /// Hard cap on tree depth (beyond it, shortest completions are used).
    pub max_depth: usize,
    /// Probability of taking a continuing transition instead of stopping
    /// at an accepting content-model state.
    pub continue_prob: f64,
    /// Probability of emitting an optional attribute.
    pub optional_attr_prob: f64,
}

impl Default for DocConfig {
    fn default() -> Self {
        DocConfig {
            max_nodes: 200,
            max_depth: 12,
            continue_prob: 0.6,
            optional_attr_prob: 0.5,
        }
    }
}

/// Samples a document conforming to `schema`.
///
/// Returns `None` if the schema has no roots or no root admits a *finite*
/// conforming document. Finishability of each state (does a finite
/// conforming subtree exist below it?) is computed as a least fixpoint
/// first, and word sampling is restricted to finishable successor states,
/// so generation always terminates and samples are always valid.
pub fn sample_document(schema: &DfaXsd, cfg: &DocConfig, rng: &mut impl Rng) -> Option<Document> {
    let n_states = schema.dfa.n_states();
    let n_syms = schema.ename.len();
    let q0 = schema.dfa.initial();

    // Base DFAs of the content models.
    let dfas: Vec<Option<Dfa>> = schema
        .lambda
        .iter()
        .map(|m| {
            m.as_ref()
                .map(|cm| relang::ops::regex_to_dfa(&cm.regex, n_syms))
        })
        .collect();

    // Least fixpoint: a state is finishable iff its content model accepts
    // some word whose symbols all lead to finishable states. The round in
    // which a state is marked bounds the minimal height of a conforming
    // subtree below it — the strictly decreasing measure the sampler's
    // panic mode descends along.
    let mut fin_round: Vec<Option<usize>> = vec![None; n_states];
    let mut round = 0usize;
    loop {
        round += 1;
        let mut newly = Vec::new();
        for q in 0..n_states {
            if q == q0 || fin_round[q].is_some() {
                continue;
            }
            let allowed = |a: Sym| {
                schema
                    .dfa
                    .transition(q, a)
                    .is_some_and(|t| fin_round[t].is_some())
            };
            let dfa = dfas[q].as_ref().expect("non-initial state");
            if distance_to_accept(dfa, &allowed)[dfa.initial()] != usize::MAX {
                newly.push(q);
            }
        }
        if newly.is_empty() {
            break;
        }
        for q in newly {
            fin_round[q] = Some(round);
        }
    }
    let finishable: Vec<bool> = fin_round.iter().map(Option::is_some).collect();

    // Pick a root whose state is finishable.
    let mut roots: Vec<Sym> = schema
        .roots
        .iter()
        .copied()
        .filter(|&r| schema.dfa.transition(q0, r).is_some_and(|t| finishable[t]))
        .collect();
    roots.sort_unstable();
    let root = *roots.choose(rng)?;
    let root_state = schema.dfa.transition(q0, root).expect("filtered above");

    // Per-state samplers restricted to finishable successors.
    let samplers: Vec<Option<WordSampler>> = (0..n_states)
        .map(|q| {
            if q == q0 || !finishable[q] {
                return None;
            }
            let dfa = dfas[q].as_ref().expect("non-initial state").clone();
            let allowed: Vec<bool> = (0..n_syms)
                .map(|a| {
                    schema
                        .dfa
                        .transition(q, Sym(a as u32))
                        .is_some_and(|t| finishable[t])
                })
                .collect();
            let dist = distance_to_accept(&dfa, &|a: Sym| allowed[a.index()]);
            // Strict mode: only successors marked in an earlier fixpoint
            // round, which strictly decreases the height measure.
            let my_round = fin_round[q].expect("finishable");
            let strict_allowed: Vec<bool> = (0..n_syms)
                .map(|a| {
                    schema
                        .dfa
                        .transition(q, Sym(a as u32))
                        .is_some_and(|t| fin_round[t].is_some_and(|r| r < my_round))
                })
                .collect();
            let dist_strict = distance_to_accept(&dfa, &|a: Sym| strict_allowed[a.index()]);
            Some(WordSampler {
                dfa,
                dist,
                allowed,
                dist_strict,
                strict_allowed,
            })
        })
        .collect();

    let mut doc = Document::new(schema.ename.name(root));
    let mut gen = Generator {
        schema,
        cfg,
        nodes: 1,
        samplers,
    };
    let root_node = doc.root();
    gen.fill(&mut doc, root_node, root_state, 1, rng);
    Some(doc)
}

struct Generator<'a> {
    schema: &'a DfaXsd,
    cfg: &'a DocConfig,
    nodes: usize,
    samplers: Vec<Option<WordSampler>>,
}

impl<'a> Generator<'a> {
    fn fill(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        state: usize,
        depth: usize,
        rng: &mut impl Rng,
    ) {
        let model = self.schema.model(state).clone();
        // Attributes.
        for a in &model.attributes {
            if a.required || rng.gen_bool(self.cfg.optional_attr_prob) {
                doc.set_attribute(node, &a.name, &sample_value(a.simple_type, rng));
            }
        }
        if let Some(st) = model.simple_content {
            doc.add_text(node, &sample_value(st, rng));
            return;
        }
        // Children.
        let shortest_only = depth >= self.cfg.max_depth || self.nodes >= self.cfg.max_nodes;
        // Far past the depth budget, switch to the strictly height-
        // decreasing word choice so recursion provably terminates.
        let strict = depth >= self.cfg.max_depth + 16;
        let word = self.samplers[state]
            .as_ref()
            .expect("only finishable states are entered")
            .sample(self.cfg.continue_prob, shortest_only, strict, rng);
        if model.mixed && rng.gen_bool(0.5) {
            doc.add_text(node, "text ");
        }
        self.nodes += word.len();
        for sym in word {
            let child = doc.add_element(node, self.schema.ename.name(sym));
            let next = self
                .schema
                .dfa
                .transition(state, sym)
                .expect("sampled symbols are wired");
            self.fill(doc, child, next, depth + 1, rng);
        }
    }
}

/// Samples words from a content model's language, restricted to symbols
/// whose successor states are finishable.
struct WordSampler {
    dfa: Dfa,
    /// Shortest number of steps to acceptance under the restriction
    /// (usize::MAX = no accepting state reachable).
    dist: Vec<usize>,
    /// Which symbols may be used.
    allowed: Vec<bool>,
    /// Distances and symbols for the strictly height-decreasing mode.
    dist_strict: Vec<usize>,
    strict_allowed: Vec<bool>,
}

impl WordSampler {
    /// Draws an accepted word. With `shortest_only`, always takes a
    /// shortest completion (bounding recursion); otherwise continues past
    /// accepting states with probability `continue_prob`.
    fn sample(
        &self,
        continue_prob: f64,
        shortest_only: bool,
        strict: bool,
        rng: &mut impl Rng,
    ) -> Vec<Sym> {
        let (dist, allowed) = if strict {
            (&self.dist_strict, &self.strict_allowed)
        } else {
            (&self.dist, &self.allowed)
        };
        let mut word = Vec::new();
        let mut q = self.dfa.initial();
        if dist[q] == usize::MAX {
            return word; // unreachable for finishable states
        }
        loop {
            let accepting = self.dfa.is_final(q);
            let stop = accepting
                && (shortest_only || strict || word.len() > 64 || !rng.gen_bool(continue_prob));
            if stop {
                return word;
            }
            // candidate moves that can still reach acceptance
            let mut moves: Vec<(Sym, usize)> = (0..self.dfa.n_syms())
                .filter_map(|a| {
                    let a = Sym(a as u32);
                    if !allowed[a.index()] {
                        return None;
                    }
                    self.dfa
                        .transition(q, a)
                        .filter(|&t| dist[t] != usize::MAX)
                        .map(|t| (a, t))
                })
                .collect();
            if moves.is_empty() {
                debug_assert!(accepting, "dead non-accepting state has dist MAX");
                return word;
            }
            if shortest_only || strict || word.len() > 64 {
                // move strictly closer to acceptance
                moves.sort_by_key(|&(_, t)| dist[t]);
                let best = dist[moves[0].1];
                moves.retain(|&(_, t)| dist[t] == best);
            }
            let &(a, t) = moves.choose(rng).expect("nonempty");
            word.push(a);
            q = t;
        }
    }
}

fn distance_to_accept(dfa: &Dfa, allowed: &dyn Fn(Sym) -> bool) -> Vec<usize> {
    let n = dfa.n_states();
    let mut dist = vec![usize::MAX; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n)
        .filter(|&q| dfa.is_final(q))
        .inspect(|&q| dist[q] = 0)
        .collect();
    // reverse edges over allowed symbols only
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for q in 0..n {
        for a in 0..dfa.n_syms() {
            let a = Sym(a as u32);
            if !allowed(a) {
                continue;
            }
            if let Some(t) = dfa.transition(q, a) {
                rev[t].push(q);
            }
        }
    }
    while let Some(q) = queue.pop_front() {
        for &p in &rev[q] {
            if dist[p] == usize::MAX {
                dist[p] = dist[q] + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Samples a lexical value of a simple type.
pub fn sample_value(st: SimpleType, rng: &mut impl Rng) -> String {
    match st {
        SimpleType::Integer => rng.gen_range(-1000..1000i32).to_string(),
        SimpleType::NonNegativeInteger => rng.gen_range(0..1000u32).to_string(),
        SimpleType::PositiveInteger => rng.gen_range(1..1000u32).to_string(),
        SimpleType::Decimal => format!("{}.{:02}", rng.gen_range(0..100), rng.gen_range(0..100)),
        SimpleType::Double => format!("{:.3}", rng.gen_range(-1.0..1.0f64) * 1000.0),
        SimpleType::Boolean => if rng.gen_bool(0.5) { "true" } else { "false" }.to_owned(),
        SimpleType::Date => format!(
            "20{:02}-{:02}-{:02}",
            rng.gen_range(0..30),
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        ),
        SimpleType::Time => format!(
            "{:02}:{:02}:{:02}",
            rng.gen_range(0..24),
            rng.gen_range(0..60),
            rng.gen_range(0..60)
        ),
        SimpleType::DateTime => format!(
            "20{:02}-{:02}-{:02}T{:02}:{:02}:{:02}",
            rng.gen_range(0..30),
            rng.gen_range(1..13),
            rng.gen_range(1..29),
            rng.gen_range(0..24),
            rng.gen_range(0..60),
            rng.gen_range(0..60)
        ),
        SimpleType::Id | SimpleType::IdRef | SimpleType::NmToken => {
            format!("tok{}", rng.gen_range(0..100000))
        }
        _ => format!("value-{}", rng.gen_range(0..1000)),
    }
}

/// Randomly corrupts a document (for negative-path benchmarks): renames
/// an element, drops an attribute, or appends a stray child.
pub fn mutate_document(doc: &Document, rng: &mut impl Rng) -> Document {
    let mut out = doc.clone();
    let elements = out.elements();
    let &victim = elements.choose(rng).expect("documents have a root");
    match rng.gen_range(0..3) {
        0 => {
            out.add_element(victim, "intruder");
        }
        1 => {
            let name = out.name(victim).expect("element").to_owned();
            let child = out.add_element(victim, &name);
            out.add_element(child, "intruder");
        }
        _ => {
            out.add_text(victim, "unexpected text !");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relang::Regex;
    use xsd::{ContentModel, DfaXsdBuilder};

    fn schema() -> DfaXsd {
        let mut b = DfaXsdBuilder::new();
        let q_doc = b.add_state();
        let q_item = b.add_state();
        let q_name = b.add_state();
        b.root("doc");
        b.transition(0, "doc", q_doc);
        b.transition(q_doc, "item", q_item);
        b.transition(q_item, "name", q_name);
        b.transition(q_item, "item", q_item);
        let item = b.ename.lookup("item").unwrap();
        let name = b.ename.lookup("name").unwrap();
        b.lambda(q_doc, ContentModel::new(Regex::star(Regex::sym(item))));
        b.lambda(
            q_item,
            ContentModel::new(Regex::concat(vec![
                Regex::sym(name),
                Regex::star(Regex::sym(item)),
            ]))
            .with_attributes([xsd::AttributeUse::required("id").with_type(SimpleType::NmToken)]),
        );
        b.lambda(q_name, ContentModel::empty().with_mixed(true));
        b.build().unwrap()
    }

    #[test]
    fn samples_are_valid() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let doc = sample_document(&s, &DocConfig::default(), &mut rng).unwrap();
            assert!(s.is_valid(&doc), "{}", xmltree::to_string(&doc));
        }
    }

    #[test]
    fn sampler_respects_node_budget_softly() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = DocConfig {
            max_nodes: 30,
            ..DocConfig::default()
        };
        for _ in 0..20 {
            let doc = sample_document(&s, &cfg, &mut rng).unwrap();
            // soft cap: one extra word may exceed it, but not wildly
            assert!(doc.element_count() < 200, "{}", doc.element_count());
        }
    }

    #[test]
    fn mutations_usually_invalidate() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(17);
        let mut invalid = 0;
        for _ in 0..40 {
            let doc = sample_document(&s, &DocConfig::default(), &mut rng).unwrap();
            let bad = mutate_document(&doc, &mut rng);
            if !s.is_valid(&bad) {
                invalid += 1;
            }
        }
        assert!(invalid >= 25, "only {invalid}/40 mutations detected");
    }

    #[test]
    fn simple_values_validate() {
        let mut rng = StdRng::seed_from_u64(23);
        for st in [
            SimpleType::Integer,
            SimpleType::Decimal,
            SimpleType::Boolean,
            SimpleType::Date,
            SimpleType::Time,
            SimpleType::DateTime,
            SimpleType::NmToken,
            SimpleType::String,
        ] {
            for _ in 0..50 {
                let v = sample_value(st, &mut rng);
                assert!(st.validates(&v), "{st}: {v:?}");
            }
        }
    }
}
