//! # bonxai-gen — workload generators for the BonXai reproduction
//!
//! * [`families`] — the worst-case families of Theorems 8 (X_n) and
//!   9 (B_n);
//! * [`dre`] — random deterministic (single-occurrence) content models;
//! * [`docgen`] — sampling conforming documents from schemas (plus a
//!   mutator for negative paths);
//! * [`corpus`] — random k-suffix schemas and the synthetic stand-in for
//!   the paper's 225-XSD Web corpus (98% 3-suffix, per Section 4.4);
//! * [`fuzz`] — structure-aware byte fuzzing of the lexer/parser/
//!   validator stack and the DTD parser, cross-checked by the
//!   differential conformance harness (panic or divergence = bug).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod docgen;
pub mod dre;
pub mod families;
pub mod fuzz;

pub use corpus::{
    diff_pair_corpus, perturb_bxsd, random_regular_bxsd, random_suffix_bxsd, web_corpus,
    CorpusEntry, DiffPair, SchemaConfig,
};
pub use docgen::{mutate_document, sample_document, sample_value, DocConfig};
pub use dre::{random_dre, DreConfig};
pub use families::{theorem8_xn, theorem9_bn};
pub use fuzz::{fuzz_dtd, fuzz_edits, fuzz_validation, random_edit, Finding, FuzzReport};
