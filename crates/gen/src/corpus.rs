//! Random schema generation and the synthetic "Web corpus".
//!
//! Section 4.4 of the paper grounds its fragment analysis in "an
//! examination of 225 XSDs from the Web \[which\] revealed that in more
//! than 98% the content model of an element only depends on the label of
//! the element itself, the label of its parent, and the label of its
//! grandparent" — i.e. 3-suffix schemas. We cannot redistribute that
//! crawl, so [`web_corpus`] synthesizes a 225-schema corpus with the same
//! k-suffix profile; the corpus-dependent experiments (E7) only rely on
//! that profile.

use rand::prelude::*;
use rand::rngs::StdRng;

use bonxai_core::bxsd::{Bxsd, BxsdBuilder};
use relang::{Regex, Sym};
use xsd::ContentModel;

use crate::dre::{random_dre, DreConfig};

/// Parameters for random suffix-based schema generation.
#[derive(Clone, Copy, Debug)]
pub struct SchemaConfig {
    /// Number of element names.
    pub n_names: usize,
    /// Number of rules.
    pub n_rules: usize,
    /// Maximum LHS word length (the fragment's k).
    pub k: usize,
    /// Content-model generation knobs.
    pub dre: DreConfig,
    /// Maximum number of distinct names per content model.
    pub max_content_names: usize,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        SchemaConfig {
            n_names: 12,
            n_rules: 14,
            k: 3,
            dre: DreConfig::default(),
            max_content_names: 5,
        }
    }
}

/// Generates a random suffix-based BXSD (every LHS is `//w` with
/// `|w| ≤ k`). The first rule's word is a single root name, which is also
/// the start element, so generated schemas always accept some document.
pub fn random_suffix_bxsd(cfg: &SchemaConfig, rng: &mut impl Rng) -> Bxsd {
    let mut b = BxsdBuilder::new();
    let names: Vec<String> = (0..cfg.n_names).map(|i| format!("e{i}")).collect();
    let syms: Vec<Sym> = names.iter().map(|n| b.ename.intern(n)).collect();
    b.start(&names[0]);

    // Ensure leaf-ish behavior: the generator lets unmatched nodes stay
    // unconstrained (Definition 1), which keeps every schema satisfiable.
    for r in 0..cfg.n_rules {
        let word_len = if r == 0 { 1 } else { rng.gen_range(1..=cfg.k) };
        let word: Vec<&str> = if r == 0 {
            vec![names[0].as_str()]
        } else {
            (0..word_len)
                .map(|_| names.choose(rng).expect("nonempty").as_str())
                .collect()
        };
        let n_content = rng.gen_range(0..=cfg.max_content_names.min(syms.len()));
        let mut pool = syms.clone();
        pool.shuffle(rng);
        pool.truncate(n_content);
        let content = random_dre(&pool, &cfg.dre, rng);
        b.suffix_rule(&word, ContentModel::new(content));
    }
    b.build().expect("single-occurrence DREs satisfy UPA")
}

/// Generates a random BXSD that is *not* suffix-based: some rules use
/// genuinely regular vertical patterns (`(//a)·(//a)`, stars over names).
pub fn random_regular_bxsd(cfg: &SchemaConfig, rng: &mut impl Rng) -> Bxsd {
    let mut b = BxsdBuilder::new();
    let names: Vec<String> = (0..cfg.n_names).map(|i| format!("e{i}")).collect();
    let syms: Vec<Sym> = names.iter().map(|n| b.ename.intern(n)).collect();
    b.start(&names[0]);

    b.suffix_rule(&[names[0].as_str()], {
        let mut pool = syms.clone();
        pool.shuffle(rng);
        pool.truncate(cfg.max_content_names.min(pool.len()));
        ContentModel::new(random_dre(&pool, &cfg.dre, rng))
    });
    for _ in 0..cfg.n_rules {
        // LHS: //x//x//y-style repetition patterns (depth-counting), which
        // have no k-suffix representation.
        let x = *syms.choose(rng).expect("nonempty");
        let y = *syms.choose(rng).expect("nonempty");
        let lhs = Regex::concat(vec![
            b.any_chain(),
            Regex::sym(x),
            b.any_chain(),
            Regex::sym(x),
            b.any_chain(),
            Regex::sym(y),
        ]);
        let mut pool = syms.clone();
        pool.shuffle(rng);
        pool.truncate(rng.gen_range(0..=cfg.max_content_names.min(pool.len())));
        let content = random_dre(&pool, &cfg.dre, rng);
        b.rule(lhs, ContentModel::new(content));
    }
    b.build().expect("single-occurrence DREs satisfy UPA")
}

/// Applies one random semantic mutation to a schema — the "schema
/// evolution" step the diff experiments compare against the original:
///
/// * widen a content model (`r` → `r?`),
/// * drop a rule (priority semantics change),
/// * toggle `mixed` on a content model,
/// * add a required attribute.
///
/// Mutations preserve UPA (optionality of a deterministic regex is
/// deterministic) but are *not* guaranteed to change the language —
/// `r?` of a nullable `r` is an equivalent schema — which is exactly
/// what a diff engine has to decide.
pub fn perturb_bxsd(src: &Bxsd, rng: &mut impl Rng) -> Bxsd {
    let mut out = src.clone();
    if out.rules.is_empty() {
        return out;
    }
    let i = rng.gen_range(0..out.rules.len());
    match rng.gen_range(0..4u8) {
        0 => {
            let regex = std::mem::replace(&mut out.rules[i].content.regex, Regex::Epsilon);
            out.rules[i].content.regex = Regex::opt(regex);
        }
        1 if out.rules.len() > 1 => {
            out.rules.remove(i);
        }
        2 => {
            out.rules[i].content.mixed = !out.rules[i].content.mixed;
        }
        _ => {
            out.rules[i]
                .content
                .attributes
                .push(xsd::AttributeUse::required("added"));
        }
    }
    out
}

/// One schema pair for the diff experiments.
#[derive(Clone, Debug)]
pub struct DiffPair {
    /// Identifier (stable across runs).
    pub id: usize,
    /// The "old" schema.
    pub a: Bxsd,
    /// The "new" schema: a clone of `a`, or a [`perturb_bxsd`] mutant.
    pub b: Bxsd,
    /// Whether `b` was perturbed (unperturbed pairs must diff equivalent).
    pub perturbed: bool,
}

/// A deterministic corpus of schema pairs for `exp_diff`: alternating
/// identical pairs (the equivalence fast path) and perturbed ones.
pub fn diff_pair_corpus(seed: u64, n: usize) -> Vec<DiffPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let size_class = id % 3;
            let cfg = SchemaConfig {
                n_names: [6, 9, 12][size_class],
                n_rules: [6, 10, 14][size_class],
                ..SchemaConfig::default()
            };
            let a = random_suffix_bxsd(&cfg, &mut rng);
            let perturbed = id % 2 == 1;
            let b = if perturbed {
                perturb_bxsd(&a, &mut rng)
            } else {
                a.clone()
            };
            DiffPair {
                id,
                a,
                b,
                perturbed,
            }
        })
        .collect()
}

/// One entry of the synthetic Web corpus.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Identifier (stable across runs).
    pub id: usize,
    /// The fragment parameter used to generate the schema (`None` for
    /// the non-k-suffix tail).
    pub k: Option<usize>,
    /// The schema.
    pub bxsd: Bxsd,
}

/// Synthesizes the 225-schema corpus with the 98% ≤3-suffix profile of
/// the study cited in Section 4.4:
///
/// * 132 schemas (≈59%) are 1-suffix (structurally DTD-like — matching
///   the observation of Bex et al. that most real XSDs are),
/// * 68 (≈30%) are 2-suffix,
/// * 21 (≈9%) are 3-suffix,
/// * 4 (≈1.8%) are not k-suffix for any small k.
pub fn web_corpus(seed: u64) -> Vec<CorpusEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(225);
    let push = |out: &mut Vec<CorpusEntry>, k: Option<usize>, rng: &mut StdRng| {
        let id = out.len();
        let size_class = rng.gen_range(0..3usize);
        let cfg = SchemaConfig {
            n_names: [8, 15, 25][size_class],
            n_rules: [8, 18, 32][size_class],
            k: k.unwrap_or(3),
            ..SchemaConfig::default()
        };
        let bxsd = match k {
            Some(_) => random_suffix_bxsd(&cfg, rng),
            // The non-k-suffix tail stays small: translating these takes
            // the general Algorithm 3, whose product is exponential in the
            // rule count (Theorem 9 — that blow-up is the *point* of
            // exp_thm9; the corpus only needs the tail to exist).
            None => random_regular_bxsd(
                &SchemaConfig {
                    n_names: 8,
                    n_rules: 3,
                    ..cfg
                },
                rng,
            ),
        };
        out.push(CorpusEntry { id, k, bxsd });
    };
    for _ in 0..132 {
        push(&mut out, Some(1), &mut rng);
    }
    for _ in 0..68 {
        push(&mut out, Some(2), &mut rng);
    }
    for _ in 0..21 {
        push(&mut out, Some(3), &mut rng);
    }
    for _ in 0..4 {
        push(&mut out, None, &mut rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonxai_core::translate::{classify_bxsd, suffix_bxsd_to_dfa_xsd};

    #[test]
    fn suffix_schemas_classify() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let b = random_suffix_bxsd(&SchemaConfig::default(), &mut rng);
            let (_, k) = classify_bxsd(&b).expect("generated schemas are suffix-based");
            assert!(k <= 3);
            assert!(suffix_bxsd_to_dfa_xsd(&b).is_ok());
        }
    }

    #[test]
    fn regular_schemas_do_not_classify() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = random_regular_bxsd(&SchemaConfig::default(), &mut rng);
        assert!(classify_bxsd(&b).is_none());
    }

    #[test]
    fn corpus_profile() {
        let corpus = web_corpus(2015);
        assert_eq!(corpus.len(), 225);
        let suffix = corpus.iter().filter(|e| e.k.is_some()).count();
        assert!(suffix as f64 / 225.0 > 0.98);
        assert_eq!(corpus.iter().filter(|e| e.k == Some(1)).count(), 132);
    }

    #[test]
    fn corpus_is_reproducible() {
        let a = web_corpus(7);
        let b = web_corpus(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bxsd.size(), y.bxsd.size());
            assert_eq!(x.bxsd.n_rules(), y.bxsd.n_rules());
        }
    }
}
