//! Structure-aware fuzzing of the whole validation stack.
//!
//! The generators in this crate know how to build *conforming* inputs:
//! random schemas ([`crate::corpus`]) and documents sampled from them
//! ([`crate::docgen`]). The fuzzer starts from those — so inputs have
//! realistic nesting, attributes, and text — then mutates the *bytes*,
//! deliberately stepping off the well-formed path: splice structural
//! tokens (`<!--`, `]]>`, `<![CDATA[`, DOCTYPE subsets), flip bits,
//! duplicate and delete spans, inject numeric edge-case strings into
//! text, and pad with long runs that force buffer growth and window
//! compaction in the incremental reader.
//!
//! Every mutated input runs through [`bonxai_core::conformance::check`]
//! — oracle, four fast paths, every lexer engine, both byte sources —
//! under `catch_unwind`. Two signals count as bugs, and only two:
//!
//! * a **panic** anywhere in lexing, parsing, or validation, and
//! * a **divergence** between any two paths.
//!
//! A separate target ([`fuzz_dtd`]) feeds mutated declaration soup to
//! the DTD parser, which has historically been the panic-happiest
//! corner (recursive parameter entities, deep content-model parens).
//!
//! Findings are returned with the offending input plus a
//! greedily-shrunk variant ([`shrink`]); the policy is that each one is
//! fixed in the PR that finds it and the shrunk input is checked in as
//! a regression test (`tests/fuzz_regressions.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};

use bonxai_core::bxsd::Bxsd;
use bonxai_core::conformance;
use bonxai_core::validate::{CompiledBxsd, ValidateOptions};
use rand::prelude::*;
use xmltree::{Document, Edit, NodeId};

use crate::corpus::{random_regular_bxsd, random_suffix_bxsd, SchemaConfig};
use crate::docgen::{sample_document, DocConfig};

/// Structural fragments spliced into inputs: the tokens most likely to
/// confuse a lexer when they appear somewhere legal-looking.
const SPLICES: &[&str] = &[
    "<",
    ">",
    "&",
    "\"",
    "'",
    "/>",
    "</",
    "<!--",
    "-->",
    "<![CDATA[",
    "]]>",
    "<?",
    "?>",
    "<!DOCTYPE r [",
    "]>",
    "&#x0;",
    "&#xD800;",
    "&lt;",
    "&unknown;",
    "&#",
    "%pe;",
    "=",
    "<a",
    "xmlns:p=\"u\"",
];

/// Numeric and whitespace edge cases aimed at the simple-type layer.
const VALUE_EDGES: &[&str] = &[
    "+0",
    "-0",
    "+",
    "-",
    "00",
    " 5 ",
    "\t1\n",
    "999999999999999999999999999999999999999",
    "-99999999999999999999999999999999999999",
    "1e309",
    "-1e309",
    "inf",
    "Infinity",
    "NaN",
    "nan",
    "0x10",
    "1.",
    ".5",
    "1.0.0",
    "+1",
    "٣",
    "2026-02-30",
    "24:00:00",
    "tru",
    "truee",
];

/// One input the fuzzer flagged as a bug.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Iteration index that produced it (reproduce with the same seed).
    pub iteration: usize,
    /// The offending input bytes, as fed to the harness.
    pub input: String,
    /// A greedily-shrunk input that still triggers the same signal.
    pub shrunk: String,
    /// The panic message, when the signal was a panic.
    pub panic: Option<String>,
    /// Path divergences, when the signal was disagreement.
    pub divergences: Vec<String>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Inputs executed.
    pub iterations: usize,
    /// Inputs every path agreed were malformed.
    pub rejected: usize,
    /// Inputs every path agreed were valid / invalid.
    pub valid: usize,
    /// See [`Self::valid`].
    pub invalid: usize,
    /// The bugs: panics and divergences, shrunk.
    pub findings: Vec<Finding>,
}

/// Applies one random byte-level mutation.
fn mutate_bytes(input: &str, rng: &mut impl Rng) -> String {
    let mut bytes = input.as_bytes().to_vec();
    let len = bytes.len().max(1);
    match rng.gen_range(0u32..8) {
        0 => {
            // Bit-flip.
            if !bytes.is_empty() {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1u8 << rng.gen_range(0u32..8);
            }
        }
        1 => {
            // Splice a structural token.
            let tok = SPLICES.choose(rng).unwrap().as_bytes();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, tok.iter().copied());
        }
        2 => {
            // Delete a span.
            let at = rng.gen_range(0..len);
            let n = rng.gen_range(1..=16.min(bytes.len().saturating_sub(at)).max(1));
            bytes.drain(at..(at + n).min(bytes.len()));
        }
        3 => {
            // Duplicate a span elsewhere.
            let at = rng.gen_range(0..len);
            let n = rng.gen_range(1..=24.min(bytes.len().saturating_sub(at)).max(1));
            let span: Vec<u8> = bytes[at..(at + n).min(bytes.len())].to_vec();
            let to = rng.gen_range(0..=bytes.len());
            bytes.splice(to..to, span);
        }
        4 => {
            // Truncate.
            let at = rng.gen_range(0..=bytes.len());
            bytes.truncate(at);
        }
        5 => {
            // Replace a byte with random ASCII.
            if !bytes.is_empty() {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(0x20u8..0x7f);
            }
        }
        6 => {
            // Inject a numeric/whitespace edge value.
            let v = VALUE_EDGES.choose(rng).unwrap().as_bytes();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, v.iter().copied());
        }
        _ => {
            // Long text run: stresses buffer growth and, through the
            // io source, window compaction in the incremental reader.
            let run = vec![b'a' + (rng.gen_range(0u8..26)); rng.gen_range(256..6000)];
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, run);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The two bug signals for one input, behind `catch_unwind`.
fn signals(bxsd: &Bxsd, input: &str) -> (Option<String>, Vec<String>, Option<Option<bool>>) {
    let outcome = catch_unwind(AssertUnwindSafe(|| conformance::check(bxsd, input, true)));
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "opaque panic payload".into());
            (Some(msg), Vec::new(), None)
        }
        Ok(o) => {
            let divs = o.divergences.iter().map(ToString::to_string).collect();
            (None, divs, Some(o.verdict()))
        }
    }
}

/// Greedy chunk-removal shrinking: repeatedly try deleting spans while
/// `still_bug` holds, halving the span size down to single bytes. A
/// candidate is only accepted when it is strictly shorter (deleting
/// mid-codepoint re-encodes lossily, which can otherwise grow the
/// string), so the loop always terminates.
pub fn shrink(input: &str, mut still_bug: impl FnMut(&str) -> bool) -> String {
    let mut cur = input.to_owned();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut at = 0;
        while at < cur.len() {
            let end = (at + chunk).min(cur.len());
            let mut cand = cur.as_bytes().to_vec();
            cand.drain(at..end);
            let cand = String::from_utf8_lossy(&cand).into_owned();
            if cand.len() < cur.len() && still_bug(&cand) {
                cur = cand;
                progressed = true;
            } else {
                at = end;
            }
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !progressed {
            return cur;
        }
    }
}

/// Fuzzes the full validation stack: `iterations` schema+document
/// pairs, each document's bytes mutated `0..=3` times, every result
/// cross-checked by the conformance harness. Deterministic in `seed`.
pub fn fuzz_validation(seed: u64, iterations: usize) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iterations {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let cfg = SchemaConfig {
            n_names: rng.gen_range(3..8),
            n_rules: rng.gen_range(1..6),
            k: rng.gen_range(1..3),
            ..SchemaConfig::default()
        };
        let bxsd = if rng.gen_bool(0.5) {
            random_suffix_bxsd(&cfg, &mut rng)
        } else {
            random_regular_bxsd(&cfg, &mut rng)
        };
        let dfa_xsd = bonxai_core::translate::bxsd_to_dfa_xsd(&bxsd);
        let doc_cfg = DocConfig {
            max_nodes: 40,
            ..DocConfig::default()
        };
        let Some(doc) = sample_document(&dfa_xsd, &doc_cfg, &mut rng) else {
            continue;
        };
        let mut input = if rng.gen_bool(0.3) {
            xmltree::to_string_pretty(&doc)
        } else {
            xmltree::to_string(&doc)
        };
        for _ in 0..rng.gen_range(0..=3) {
            input = mutate_bytes(&input, &mut rng);
        }
        report.iterations += 1;
        let (panic, divergences, verdict) = signals(&bxsd, &input);
        if panic.is_none() && divergences.is_empty() {
            match verdict {
                Some(None) => report.rejected += 1,
                Some(Some(true)) => report.valid += 1,
                Some(Some(false)) => report.invalid += 1,
                None => unreachable!("no panic implies a verdict"),
            }
            continue;
        }
        let shrunk = shrink(&input, |cand| {
            let (p, d, _) = signals(&bxsd, cand);
            p.is_some() == panic.is_some() && d.is_empty() == divergences.is_empty()
        });
        report.findings.push(Finding {
            iteration: i,
            input,
            shrunk,
            panic,
            divergences,
        });
    }
    report
}

/// Attribute / text values used by the edit-replay fuzzer. All are
/// attribute-safe (no tab/newline, which XML parsers normalize to
/// spaces — that would make arena and reparse verdicts legitimately
/// differ); several are simple-type edge cases.
const EDIT_VALUES: &[&str] = &[
    "",
    "0",
    "1",
    "-3",
    "hello",
    "5.5",
    "true",
    "false",
    "NaN",
    "00",
    " 5 ",
    "999999999999999999999999999999999999999",
];

/// An element name drawn from the schema alphabet, or (sometimes) an
/// intruder name no rule knows — the unknown-name poisoning path.
fn random_name(bxsd: &Bxsd, rng: &mut impl Rng) -> String {
    let names: Vec<&str> = bxsd.ename.entries().map(|(_, n)| n).collect();
    if names.is_empty() || rng.gen_bool(0.15) {
        "intruder".to_owned()
    } else {
        (*names.choose(rng).unwrap()).to_owned()
    }
}

/// An attribute name some rule declares, or an undeclared one.
fn random_attr_name(bxsd: &Bxsd, rng: &mut impl Rng) -> String {
    let mut names: Vec<&str> = bxsd
        .rules
        .iter()
        .flat_map(|r| r.content.attributes.iter().map(|a| a.name.as_str()))
        .collect();
    names.push("intruder");
    (*names.choose(rng).unwrap()).to_owned()
}

/// Applies one random edit through the `Document` mutation API:
/// attribute set/remove, text set/insert, child insert/append/remove,
/// and subtree replacement — occasionally at the root, which forces
/// [`CompiledBxsd::revalidate`]'s full-run escape hatch. Shared with
/// `tests/incremental_equivalence.rs`.
pub fn random_edit(bxsd: &Bxsd, doc: &mut Document, rng: &mut impl Rng) {
    let elements: Vec<NodeId> = doc.iter_elements().collect();
    let &target = elements.choose(rng).unwrap();
    let name = random_name(bxsd, rng);
    match rng.gen_range(0u32..8) {
        0 => {
            let attr = random_attr_name(bxsd, rng);
            let value = EDIT_VALUES.choose(rng).unwrap();
            doc.set_attribute(target, &attr, value);
        }
        1 => {
            let attr = match doc.attributes(target).first() {
                Some(a) => a.name.clone(),
                None => random_attr_name(bxsd, rng),
            };
            doc.remove_attribute(target, &attr);
        }
        2 => {
            let value = EDIT_VALUES.choose(rng).unwrap();
            match doc.children(target).iter().find(|&&c| !doc.is_element(c)) {
                Some(&text) => doc.set_text(text, value),
                None => {
                    let at = rng.gen_range(0..=doc.children(target).len());
                    let _ = doc.insert_text(target, at, value);
                }
            }
        }
        3 => {
            let at = rng.gen_range(0..=doc.children(target).len());
            let _ = doc.insert_child(target, at, &name);
        }
        4 => {
            let _ = doc.add_element(target, &name);
        }
        5 => {
            let kids: Vec<NodeId> = doc.children(target).to_vec();
            match kids.choose(rng) {
                Some(&child) => doc.remove_child(target, child),
                None => {
                    let _ = doc.insert_child(target, 0, &name);
                }
            }
        }
        6 => {
            // Replace an inner subtree with a freshly built one.
            let mut src = Document::new(&name);
            for _ in 0..rng.gen_range(0u32..3) {
                let child = random_name(bxsd, rng);
                src.add_element(src.root(), &child);
            }
            let _ = doc.replace_subtree(target, &src, src.root());
        }
        _ => {
            // Replace the whole root.
            let mut src = Document::new(&name);
            if rng.gen_bool(0.5) {
                let child = random_name(bxsd, rng);
                src.add_element(src.root(), &child);
            }
            let root = doc.root();
            let _ = doc.replace_subtree(root, &src, src.root());
        }
    }
}

/// Runs one edit script and collects divergence signals. Returns the
/// serialized edited document, the divergences, and the final verdict.
fn replay_edits(
    bxsd: &Bxsd,
    doc: &mut Document,
    rng: &mut impl Rng,
) -> (String, Vec<String>, bool) {
    let compiled = CompiledBxsd::new(bxsd);
    doc.enable_edit_log();
    let mut state = compiled.validate_persistent(doc);
    let mut divergences = Vec::new();
    let n_edits = rng.gen_range(1usize..=5);
    // Replay either after every edit or once for the whole script.
    let stepwise = rng.gen_bool(0.5);
    let mut from = state.generation();
    let mut got = state.report();
    for k in 0..n_edits {
        random_edit(bxsd, doc, rng);
        if stepwise || k + 1 == n_edits {
            let edits: Vec<(u64, Edit)> = doc.edit_log().unwrap().since(from).to_vec();
            got = compiled.revalidate(doc, &mut state, &edits);
            from = state.generation();
            let fresh = compiled.validate(doc);
            if got.violations != fresh.violations {
                divergences.push(format!(
                    "revalidate vs tree-product after edit {k}: {:?} vs {:?}",
                    got.violations, fresh.violations
                ));
            }
        }
    }
    let lockstep = compiled.validate_with(
        doc,
        ValidateOptions {
            record_matches: false,
            force_lockstep: true,
        },
    );
    if got.violations != lockstep.violations {
        divergences.push(format!(
            "revalidate vs tree-lockstep: {:?} vs {:?}",
            got.violations, lockstep.violations
        ));
    }
    let want = bonxai_core::oracle::validate(bxsd, doc);
    if got.violations != want.violations {
        divergences.push(format!(
            "revalidate vs oracle: {:?} vs {:?}",
            got.violations, want.violations
        ));
    }
    // Serialize + reparse: the streaming paths see renumbered node ids,
    // so parity with them is checked at verdict level through the full
    // conformance harness (which also re-runs the tree paths, both
    // engines, both byte sources).
    let input = xmltree::to_string(doc);
    let outcome = conformance::check(bxsd, &input, false);
    divergences.extend(outcome.divergences.iter().map(ToString::to_string));
    match outcome.verdict() {
        None => divergences.push("serialized edited document no longer parses".to_owned()),
        Some(verdict) if verdict != got.is_valid() => divergences.push(format!(
            "reparsed verdict {verdict} != revalidate verdict {}",
            got.is_valid()
        )),
        _ => {}
    }
    (input, divergences, got.is_valid())
}

/// Edit-replay fuzzing of the incremental engine: sample a conforming
/// (schema, document) pair, apply a random edit script through the
/// `Document` mutation API, and require [`CompiledBxsd::revalidate`] to
/// be byte-identical to a fresh tree-product run, the lock-step run,
/// and the oracle on the edited arena — then serialize the result and
/// push it through the whole conformance harness for verdict parity
/// with the streaming paths. Deterministic in `seed`.
///
/// Findings carry the serialized edited document; the bug lives in the
/// edit script rather than the bytes, so no byte-level shrinking is
/// attempted (`shrunk == input`).
pub fn fuzz_edits(seed: u64, iterations: usize) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iterations {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let cfg = SchemaConfig {
            n_names: rng.gen_range(3..8),
            n_rules: rng.gen_range(1..6),
            k: rng.gen_range(1..3),
            ..SchemaConfig::default()
        };
        let bxsd = if rng.gen_bool(0.5) {
            random_suffix_bxsd(&cfg, &mut rng)
        } else {
            random_regular_bxsd(&cfg, &mut rng)
        };
        let dfa_xsd = bonxai_core::translate::bxsd_to_dfa_xsd(&bxsd);
        let doc_cfg = DocConfig {
            max_nodes: 40,
            ..DocConfig::default()
        };
        let Some(mut doc) = sample_document(&dfa_xsd, &doc_cfg, &mut rng) else {
            continue;
        };
        report.iterations += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| replay_edits(&bxsd, &mut doc, &mut rng)));
        match outcome {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "opaque panic payload".into());
                let input = xmltree::to_string(&doc);
                report.findings.push(Finding {
                    iteration: i,
                    shrunk: input.clone(),
                    input,
                    panic: Some(msg),
                    divergences: Vec::new(),
                });
            }
            Ok((input, divergences, verdict)) => {
                if divergences.is_empty() {
                    if verdict {
                        report.valid += 1;
                    } else {
                        report.invalid += 1;
                    }
                } else {
                    report.findings.push(Finding {
                        iteration: i,
                        shrunk: input.clone(),
                        input,
                        panic: None,
                        divergences,
                    });
                }
            }
        }
    }
    report
}

/// Skeletons the DTD fuzzer starts from before byte mutation.
const DTD_SEEDS: &[&str] = &[
    "<!ELEMENT a (b, (c | d)*, e?)> <!ELEMENT b (#PCDATA)> <!ATTLIST a x CDATA #REQUIRED>",
    "<!ENTITY % p1 \"<!ELEMENT x (y)>\"> %p1; <!ENTITY % p2 \"%p1;\"> %p2;",
    "<!ELEMENT a ((((((b))))))> <!ELEMENT b EMPTY> <!NOTATION n SYSTEM \"u\">",
    "<!ATTLIST a b (x | y | z) \"x\" c ID #IMPLIED d NMTOKENS #FIXED \"m n\">",
    "<!ENTITY e \"text &amp; more\"> <!ELEMENT a ANY> <!-- comment --> <?pi data?>",
];

/// Fuzzes the DTD parser with mutated declaration soup. A panic is the
/// only signal — grammar errors must come back as positioned
/// `Err(ParseError)`, never as a crash. Deterministic in `seed`.
pub fn fuzz_dtd(seed: u64, iterations: usize) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iterations {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut input = (*DTD_SEEDS.choose(&mut rng).unwrap()).to_owned();
        for _ in 0..rng.gen_range(1..=4) {
            input = mutate_bytes(&input, &mut rng);
        }
        report.iterations += 1;
        let parse = |s: &str| {
            catch_unwind(AssertUnwindSafe(|| {
                xmltree::dtd::parse_dtd(s).map(|_| ()).map_err(|_| ())
            }))
        };
        match parse(&input) {
            Ok(Ok(())) => report.valid += 1,
            Ok(Err(())) => report.rejected += 1,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "opaque panic payload".into());
                let shrunk = shrink(&input, |cand| parse(cand).is_err());
                report.findings.push(Finding {
                    iteration: i,
                    input,
                    shrunk,
                    panic: Some(msg),
                    divergences: Vec::new(),
                });
            }
        }
    }
    report
}
