//! The worst-case families of Theorems 8 and 9.
//!
//! * [`theorem8_xn`] — the XSDs (X_n), of size O(n²), whose smallest
//!   equivalent BXSDs have size 2^Ω(n). The construction extends
//!   Ehrenfeucht & Zeiger's language Z_n over Σ_n = {a_ij}: words where
//!   each symbol's target must match the next symbol's source; the
//!   automaton remembers the *error index* of bad words, and branching
//!   `a_ll a_ll` is only allowed below an error with index l.
//! * [`theorem9_bn`] — the BXSDs (B_n), of size O(n), whose smallest
//!   equivalent XSDs have at least 2^n types: the XSD must track the set
//!   of indices i for which a_i has occurred once vs. twice on the path.

use std::collections::BTreeSet;

use bonxai_core::bxsd::{Bxsd, BxsdBuilder};
use relang::{Alphabet, Dfa, Regex, Sym};
use xsd::{ContentModel, DfaXsd};

/// Builds X_n as a DFA-based XSD (Theorem 8's family).
///
/// States: a fresh root state, the "tracking" states q_1..q_n, and the
/// "error" states e_1..e_n. Alphabet: Σ_n = {a_ij | i,j ∈ 1..n}, with
/// `a_ij` named `a_i_j`.
#[allow(clippy::needless_range_loop)] // i/j/l mirror the paper's a_ij indexing
pub fn theorem8_xn(n: usize) -> DfaXsd {
    assert!(n >= 1);
    let mut ename = Alphabet::new();
    // sym(i, j) with 1-based i, j.
    let mut sym = vec![vec![Sym(0); n + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=n {
            sym[i][j] = ename.intern(&format!("a_{i}_{j}"));
        }
    }
    let n_syms = ename.len();

    // State numbering: 0 = q0 (root), 1..=n = q_i, n+1..=2n = e_i.
    let q = |i: usize| i; // q_i
    let e = |i: usize| n + i; // e_i
    let n_states = 1 + 2 * n;
    let mut dfa = Dfa::new(n_syms, n_states, 0);

    // From q_i: a_jl → q_l if i == j, else e_i.
    for i in 1..=n {
        for j in 1..=n {
            for l in 1..=n {
                let target = if i == j { q(l) } else { e(i) };
                dfa.set_transition(q(i), sym[j][l], Some(target));
            }
        }
    }
    // Error states absorb.
    for i in 1..=n {
        for j in 1..=n {
            for l in 1..=n {
                dfa.set_transition(e(i), sym[j][l], Some(e(i)));
            }
        }
    }
    // Root: mirrors q_1's row (the paper's initial state is q_1).
    for j in 1..=n {
        for l in 1..=n {
            let target = if j == 1 { q(l) } else { e(1) };
            dfa.set_transition(0, sym[j][l], Some(target));
        }
    }

    // λ(q_i) = ε ∪ Σ; λ(e_l) = ε ∪ Σ ∪ {a_ll a_ll}.
    let all: Vec<Sym> = ename.symbols().collect();
    let eps_or_sigma = Regex::opt(Regex::sym_set(all.iter().copied()));
    let mut lambda: Vec<Option<ContentModel>> = vec![None; n_states];
    for i in 1..=n {
        lambda[q(i)] = Some(ContentModel::new(eps_or_sigma.clone()));
    }
    for l in 1..=n {
        // (a_ll (a_ll)? + Σ\{a_ll})? — deterministic by distinct firsts.
        let all_sym = sym[l][l];
        let mut branches = vec![Regex::concat(vec![
            Regex::sym(all_sym),
            Regex::opt(Regex::sym(all_sym)),
        ])];
        branches.extend(
            all.iter()
                .copied()
                .filter(|&s| s != all_sym)
                .map(Regex::sym),
        );
        lambda[e(l)] = Some(ContentModel::new(Regex::opt(Regex::alt(branches))));
    }

    let roots: BTreeSet<Sym> = ename.symbols().collect();
    DfaXsd::new(ename, dfa, roots, lambda).expect("X_n is a valid DFA-based XSD")
}

/// Builds B_n (Theorem 9's family):
///
/// ```text
/// //a               → ε
/// //(b1 + … + bn)   → ε
/// //(a1 + … + an)   → (a + a1 + … + an)
/// //a1//a1//a       → b1
///   …
/// //an//an//a       → bn
/// ```
pub fn theorem9_bn(n: usize) -> Bxsd {
    assert!(n >= 1);
    let mut b = BxsdBuilder::new();
    let a = b.ename.intern("a");
    let a_i: Vec<Sym> = (1..=n).map(|i| b.ename.intern(&format!("a{i}"))).collect();
    let b_i: Vec<Sym> = (1..=n).map(|i| b.ename.intern(&format!("b{i}"))).collect();
    for i in 1..=n {
        b.start(&format!("a{i}"));
    }

    b.suffix_rule(&["a"], ContentModel::empty());
    // //(b1 + … + bn) → ε
    b.rule(
        Regex::concat(vec![b.any_chain(), Regex::sym_set(b_i.iter().copied())]),
        ContentModel::empty(),
    );
    // //(a1 + … + an) → (a + a1 + … + an)
    let content = Regex::opt(Regex::alt(
        std::iter::once(a)
            .chain(a_i.iter().copied())
            .map(Regex::sym)
            .collect(),
    ));
    b.rule(
        Regex::concat(vec![b.any_chain(), Regex::sym_set(a_i.iter().copied())]),
        ContentModel::new(content),
    );
    // //ai//ai//a → bi
    for i in 1..=n {
        b.rule(
            Regex::concat(vec![
                b.any_chain(),
                Regex::sym(a_i[i - 1]),
                b.any_chain(),
                Regex::sym(a_i[i - 1]),
                b.any_chain(),
                Regex::sym(a),
            ]),
            ContentModel::new(Regex::sym(b_i[i - 1])),
        );
    }
    b.build().expect("B_n is a valid BXSD")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonxai_core::translate::{bxsd_to_dfa_xsd, dfa_xsd_to_bxsd};
    use bonxai_core::validate::is_valid as bxsd_valid;
    use xmltree::builder::elem;

    #[test]
    fn xn_has_quadratic_size() {
        for n in 1..=4 {
            let x = theorem8_xn(n);
            assert_eq!(x.n_states(), 1 + 2 * n);
            assert_eq!(x.ename.len(), n * n);
        }
    }

    #[test]
    fn xn_accepts_zn_chains() {
        let x = theorem8_xn(3);
        // a valid chain: a_12 a_23 a_31 (targets match sources), rooted at
        // a_1* because the root mirrors q_1
        let doc = elem("a_1_2")
            .child(elem("a_2_3").child(elem("a_3_1")))
            .build();
        assert!(x.is_valid(&doc), "{:?}", x.validate(&doc));
        // branching below a non-error chain is rejected
        let doc = elem("a_1_2")
            .child(elem("a_2_3"))
            .child(elem("a_2_1"))
            .build();
        assert!(!x.is_valid(&doc));
    }

    #[test]
    fn xn_allows_branching_below_errors() {
        let x = theorem8_xn(3);
        // a_12 then a_31 is an error with index 2 (previous target 2 ≠
        // source 3). Below it, a_22 a_22 branching is allowed.
        let doc = elem("a_1_2")
            .child(elem("a_3_1").child(elem("a_2_2")).child(elem("a_2_2")))
            .build();
        assert!(x.is_valid(&doc), "{:?}", x.validate(&doc));
        // but a_33 a_33 branching is not (wrong error index)
        let doc = elem("a_1_2")
            .child(elem("a_3_1").child(elem("a_3_3")).child(elem("a_3_3")))
            .build();
        assert!(!x.is_valid(&doc));
    }

    #[test]
    fn xn_to_bxsd_preserves_language_small() {
        let x = theorem8_xn(2);
        let b = dfa_xsd_to_bxsd(&x);
        let docs = [
            elem("a_1_2").child(elem("a_2_1")).build(),
            elem("a_1_1").child(elem("a_2_2")).build(), // error path
            elem("a_1_2")
                .child(elem("a_1_1").child(elem("a_2_2")).child(elem("a_2_2")))
                .build(),
        ];
        for doc in &docs {
            assert_eq!(
                x.is_valid(doc),
                bxsd_valid(&b, doc),
                "{}",
                xmltree::to_string(doc)
            );
        }
    }

    #[test]
    fn bn_has_linear_size() {
        let s3 = theorem9_bn(3).size();
        let s6 = theorem9_bn(6).size();
        // size grows linearly-ish in n (the //-gaps contribute |EName|)
        assert!(s6 < 4 * s3 + 40, "s3={s3} s6={s6}");
    }

    #[test]
    fn bn_semantics() {
        let b = theorem9_bn(2);
        // a2 a1 a1 a: a1 occurs twice, largest such j = 1 → child b1
        let doc = elem("a2")
            .child(elem("a1").child(elem("a1").child(elem("a").child(elem("b1")))))
            .build();
        assert!(bxsd_valid(&b, &doc), "{}", b.display());
        // with b2 instead: invalid
        let doc = elem("a2")
            .child(elem("a1").child(elem("a1").child(elem("a").child(elem("b2")))))
            .build();
        assert!(!bxsd_valid(&b, &doc));
        // no repeated ai: a's content must be ε
        let doc = elem("a2").child(elem("a1").child(elem("a"))).build();
        assert!(bxsd_valid(&b, &doc));
        let doc = elem("a2")
            .child(elem("a1").child(elem("a").child(elem("b1"))))
            .build();
        assert!(!bxsd_valid(&b, &doc));
    }

    #[test]
    fn bn_to_xsd_blows_up() {
        // the state count of Algorithm 3's output grows like 2^n
        let s2 = bxsd_to_dfa_xsd(&theorem9_bn(2)).n_states();
        let s4 = bxsd_to_dfa_xsd(&theorem9_bn(4)).n_states();
        let s6 = bxsd_to_dfa_xsd(&theorem9_bn(6)).n_states();
        assert!(s4 >= 2 * s2, "s2={s2} s4={s4}");
        assert!(s6 >= 2 * s4, "s4={s4} s6={s6}");
        assert!(s6 >= 64, "s6={s6}");
    }
}
