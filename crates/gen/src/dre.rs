//! Random deterministic content models.
//!
//! The generator produces *single-occurrence* regular expressions (every
//! symbol occurs at most once), which are deterministic by construction —
//! the Glushkov automaton cannot have two competing positions for the
//! same symbol. Studies of real-world schemas (Bex et al., cited by the
//! paper) found that practical content models overwhelmingly have this
//! shape.

use rand::prelude::*;
use relang::{Regex, Sym, UpperBound};

/// Tuning knobs for content-model generation.
#[derive(Clone, Copy, Debug)]
pub struct DreConfig {
    /// Probability that an internal node is a choice (vs. a sequence).
    pub choice_prob: f64,
    /// Probability of wrapping a node in `*`/`+`/`?`/`{n,m}`.
    pub modifier_prob: f64,
    /// Probability that a modifier is a counter `{n,m}`.
    pub counter_prob: f64,
    /// Maximum nesting depth.
    pub max_depth: usize,
}

impl Default for DreConfig {
    fn default() -> Self {
        DreConfig {
            choice_prob: 0.4,
            modifier_prob: 0.5,
            counter_prob: 0.1,
            max_depth: 3,
        }
    }
}

/// Generates a deterministic expression using each of `syms` at most
/// once. Returns [`Regex::Epsilon`] when `syms` is empty.
///
/// Single-occurrence expressions are deterministic except for some
/// counter nestings (a counter body that can restart on the same symbol);
/// the generator uses rejection sampling for those rare cases and falls
/// back to a plain sequence, which is always deterministic.
pub fn random_dre(syms: &[Sym], cfg: &DreConfig, rng: &mut impl Rng) -> Regex {
    let mut pool: Vec<Sym> = syms.to_vec();
    pool.shuffle(rng);
    for _ in 0..8 {
        let r = build(&pool, cfg, cfg.max_depth, rng);
        if relang::regex::determinism::is_deterministic(&r) {
            return r;
        }
    }
    Regex::concat(pool.into_iter().map(Regex::sym).collect())
}

fn build(pool: &[Sym], cfg: &DreConfig, depth: usize, rng: &mut impl Rng) -> Regex {
    let base = match pool {
        [] => Regex::Epsilon,
        [s] => Regex::sym(*s),
        _ if depth == 0 => {
            // flat sequence or choice over the pool
            let parts: Vec<Regex> = pool.iter().map(|&s| Regex::sym(s)).collect();
            if rng.gen_bool(cfg.choice_prob) {
                Regex::alt(parts)
            } else {
                Regex::concat(parts)
            }
        }
        _ => {
            // split the pool into 2–4 chunks
            let k = rng.gen_range(2..=pool.len().min(4));
            let mut cuts: Vec<usize> = (1..pool.len()).collect();
            cuts.shuffle(rng);
            let mut cuts: Vec<usize> = cuts.into_iter().take(k - 1).collect();
            cuts.sort_unstable();
            cuts.insert(0, 0);
            cuts.push(pool.len());
            let parts: Vec<Regex> = cuts
                .windows(2)
                .map(|w| {
                    let part = build(&pool[w[0]..w[1]], cfg, depth - 1, rng);
                    maybe_modify(part, cfg, rng)
                })
                .collect();
            if rng.gen_bool(cfg.choice_prob) {
                Regex::alt(parts)
            } else {
                Regex::concat(parts)
            }
        }
    };
    maybe_modify(base, cfg, rng)
}

fn maybe_modify(r: Regex, cfg: &DreConfig, rng: &mut impl Rng) -> Regex {
    if matches!(r, Regex::Epsilon | Regex::Empty) || !rng.gen_bool(cfg.modifier_prob) {
        return r;
    }
    // Counters over a *nullable* body are not one-unambiguous (the reader
    // cannot tell a skipped iteration from a finished counter), so they
    // are only applied to non-nullable bodies.
    if rng.gen_bool(cfg.counter_prob) && !relang::regex::props::nullable(&r) {
        let lo = rng.gen_range(0..=2u32);
        let hi = lo + rng.gen_range(1..=3u32);
        return Regex::repeat(r, lo, UpperBound::Finite(hi));
    }
    match rng.gen_range(0..3) {
        0 => Regex::star(r),
        1 => Regex::plus(r),
        _ => Regex::opt(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use relang::regex::determinism::is_deterministic;

    #[test]
    fn generated_expressions_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let syms: Vec<Sym> = (0..8).map(Sym).collect();
        for _ in 0..200 {
            let r = random_dre(&syms, &DreConfig::default(), &mut rng);
            assert!(is_deterministic(&r), "{r:?}");
        }
    }

    #[test]
    fn symbols_occur_at_most_once() {
        let mut rng = StdRng::seed_from_u64(11);
        let syms: Vec<Sym> = (0..6).map(Sym).collect();
        for _ in 0..100 {
            let r = random_dre(&syms, &DreConfig::default(), &mut rng);
            let mut occ = Vec::new();
            collect(&r, &mut occ);
            let mut sorted = occ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), occ.len(), "{r:?}");
        }

        fn collect(r: &Regex, out: &mut Vec<Sym>) {
            match r {
                Regex::Sym(s) => out.push(*s),
                Regex::Concat(ps) | Regex::Alt(ps) | Regex::Interleave(ps) => {
                    for p in ps {
                        collect(p, out);
                    }
                }
                Regex::Star(p) | Regex::Plus(p) | Regex::Opt(p) | Regex::Repeat(p, _, _) => {
                    collect(p, out)
                }
                Regex::Empty | Regex::Epsilon => {}
            }
        }
    }

    #[test]
    fn empty_pool_gives_epsilon() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            random_dre(&[], &DreConfig::default(), &mut rng),
            Regex::Epsilon
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let syms: Vec<Sym> = (0..5).map(Sym).collect();
        let r1 = random_dre(&syms, &DreConfig::default(), &mut StdRng::seed_from_u64(42));
        let r2 = random_dre(&syms, &DreConfig::default(), &mut StdRng::seed_from_u64(42));
        assert_eq!(r1, r2);
    }
}
