//! # bonxai — a Rust implementation of the BonXai schema language
//!
//! This facade crate re-exports the whole workspace of the PODS 2015
//! reproduction (*BonXai: Combining the simplicity of DTD with the
//! expressiveness of XML Schema*, Martens, Neven, Niewerth, Schwentick):
//!
//! * [`relang`] — regular-language substrate (regexes, UPA, automata);
//! * [`xmltree`] — XML documents, parser, serializer, DTDs;
//! * [`xsd`] — core XML Schema (EDC/UPA), DFA-based XSDs, XML syntax;
//! * [`core`] (`bonxai-core`) — the BonXai language: formal BXSD model,
//!   practical compact syntax, validation, and the four translation
//!   algorithms with their k-suffix fast paths;
//! * [`gen`] (`bonxai-gen`) — workload generators and the Theorem 8/9
//!   worst-case families.
//!
//! ## Quickstart
//!
//! ```
//! use bonxai::core::BonxaiSchema;
//!
//! let schema = BonxaiSchema::parse(r#"
//!     global { note }
//!     grammar {
//!       note = { element to, element body }
//!       to   = { type xs:string }
//!       body = mixed { }
//!     }
//! "#).unwrap();
//!
//! let doc = bonxai::xmltree::parse_document(
//!     "<note><to>Ada</to><body>See you at PODS!</body></note>").unwrap();
//! assert!(schema.is_valid(&doc));
//!
//! // BonXai is a front-end for XML Schema: compile it.
//! let opts = bonxai::core::translate::TranslateOptions::default();
//! let (xsd, _path) = bonxai::core::pipeline::bonxai_to_xsd(&schema, &opts);
//! assert!(bonxai::xsd::is_valid(&xsd, &doc));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bonxai_core as core;
pub use bonxai_gen as gen;
pub use relang;
pub use xmltree;
pub use xsd;

pub use bonxai_core::{BonxaiSchema, Bxsd};
