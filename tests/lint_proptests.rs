//! Property-based tests for the lint pass, driven by the `bonxai-gen`
//! schema generators: over random schemas (suffix-based and general),
//! lint must never panic and must be fully deterministic — the same
//! schema yields byte-identical reports on every run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use bonxai::core::lang::lift;
use bonxai::core::lint::{lint_ast, render_json, render_text, LintOptions};
use bonxai::gen::{random_regular_bxsd, random_suffix_bxsd, SchemaConfig};

/// Lints the lifted surface form of a generated BXSD with notes on.
fn lint_generated(bxsd: &bonxai::core::Bxsd) -> (String, String) {
    let ast = lift(bxsd);
    let opts = LintOptions {
        include_notes: true,
        ..LintOptions::default()
    };
    let report = lint_ast(&ast, &opts);
    (render_text(&report, "gen"), render_json(&report, "gen"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lint_never_panics_and_is_deterministic_on_suffix_schemas(seed in any::<u64>()) {
        let cfg = SchemaConfig::default();
        let bxsd = random_suffix_bxsd(&cfg, &mut StdRng::seed_from_u64(seed));
        let (text_a, json_a) = lint_generated(&bxsd);
        let (text_b, json_b) = lint_generated(&bxsd);
        prop_assert_eq!(text_a, text_b);
        prop_assert_eq!(json_a, json_b);
    }

    #[test]
    fn lint_never_panics_and_is_deterministic_on_regular_schemas(seed in any::<u64>()) {
        let cfg = SchemaConfig {
            n_names: 6,
            n_rules: 6,
            ..SchemaConfig::default()
        };
        let bxsd = random_regular_bxsd(&cfg, &mut StdRng::seed_from_u64(seed));
        let (text_a, json_a) = lint_generated(&bxsd);
        let (text_b, json_b) = lint_generated(&bxsd);
        prop_assert_eq!(text_a, text_b);
        prop_assert_eq!(json_a, json_b);
    }
}
