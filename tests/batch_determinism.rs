//! Determinism of the work-stealing batch engine: the per-file reports
//! of `validate_paths` (the engine behind `bonxai validate --jobs N
//! <file>...`) must be byte-identical for every worker count and must
//! not depend on submission order — scheduling may interleave workers
//! arbitrarily, but each job carries its input index and results are
//! sorted back, so the observable output is a pure function of the
//! inputs. The corpus deliberately mixes valid, invalid, malformed, and
//! missing files of very different sizes so the deques actually steal.

use std::fs;
use std::path::PathBuf;

use bonxai::core::{BonxaiSchema, CompiledBxsd, ValidateOptions};
use bonxai::xsd::violation::Violation;

const SCHEMA: &str = r#"
    global { doc }
    grammar {
      doc  = { (element item | element note)* }
      item = mixed { attribute id? }
      note = mixed { }
      @id  = { type xs:integer }
    }
"#;

/// A comparable rendering of one file's outcome.
fn key(report: &Result<bonxai::core::BxsdReport, String>) -> Result<Vec<Violation>, String> {
    match report {
        Ok(r) => Ok(r.violations.clone()),
        Err(e) => Err(e.clone()),
    }
}

fn write_corpus(dir: &std::path::Path) -> Vec<PathBuf> {
    fs::create_dir_all(dir).expect("temp dir");
    let mut paths = Vec::new();
    for i in 0..14usize {
        let path = dir.join(format!("doc{i}.xml"));
        let body = match i % 5 {
            // valid, with wildly varying size so chunked scheduling
            // would have produced uneven worker loads
            0 => format!(
                "<doc>{}</doc>",
                "<item id=\"7\">x</item>".repeat(1 + i * 40)
            ),
            1 => "<doc><note>fine</note></doc>".to_owned(),
            // invalid: undeclared child element
            2 => "<doc><bogus/></doc>".to_owned(),
            // invalid: facet violation in an attribute
            3 => "<doc><item id=\"seven\"/></doc>".to_owned(),
            // malformed XML: parse error, no report
            _ => "<doc><item>".to_owned(),
        };
        fs::write(&path, body).expect("write corpus file");
        paths.push(path);
    }
    // A path that does not exist: errors must stay in place too.
    paths.push(dir.join("missing.xml"));
    paths
}

#[test]
fn reports_identical_across_worker_counts_and_input_order() {
    let schema = BonxaiSchema::parse(SCHEMA).expect("schema parses");
    let compiled = CompiledBxsd::new(&schema.bxsd);
    let opts = ValidateOptions::default();
    let dir = std::env::temp_dir().join("bonxai-batch-determinism");
    let paths = write_corpus(&dir);

    let baseline = compiled.validate_paths(&paths, opts, 1);
    assert_eq!(baseline.len(), paths.len());
    assert!(baseline.iter().any(|f| f.is_valid()));
    assert!(baseline
        .iter()
        .any(|f| matches!(&f.report, Ok(r) if !r.is_valid())));
    assert!(baseline.iter().any(|f| f.report.is_err()));

    for jobs in [2, 3, 8, 32] {
        let run = compiled.validate_paths(&paths, opts, jobs);
        assert_eq!(run.len(), baseline.len(), "jobs={jobs}");
        for (a, b) in run.iter().zip(&baseline) {
            assert_eq!(a.path, b.path, "jobs={jobs}: input order not preserved");
            assert_eq!(key(&a.report), key(&b.report), "jobs={jobs}: {}", a.path);
        }
    }

    // Shuffle the submission order (deterministically); every file must
    // get the same report it got before, now at its new position.
    let mut shuffled: Vec<PathBuf> = Vec::new();
    let (evens, odds): (Vec<_>, Vec<_>) = paths.iter().enumerate().partition(|(i, _)| i % 2 == 0);
    shuffled.extend(odds.into_iter().rev().map(|(_, p)| p.clone()));
    shuffled.extend(evens.into_iter().map(|(_, p)| p.clone()));
    assert_ne!(shuffled, paths);

    let by_path: std::collections::BTreeMap<&str, _> = baseline
        .iter()
        .map(|f| (f.path.as_str(), key(&f.report)))
        .collect();
    let run = compiled.validate_paths(&shuffled, opts, 8);
    assert_eq!(run.len(), shuffled.len());
    for (fr, submitted) in run.iter().zip(&shuffled) {
        assert_eq!(fr.path, submitted.display().to_string());
        assert_eq!(key(&fr.report), by_path[fr.path.as_str()], "{}", fr.path);
    }
}

#[test]
fn in_memory_batches_match_sequential_validation() {
    let schema = BonxaiSchema::parse(SCHEMA).expect("schema parses");
    let compiled = CompiledBxsd::new(&schema.bxsd);
    let opts = ValidateOptions::default();
    let docs: Vec<_> = (0..17usize)
        .map(|i| {
            let body = if i % 4 == 0 {
                "<doc><bogus/></doc>".to_owned()
            } else {
                format!("<doc>{}</doc>", "<note>n</note>".repeat(i + 1))
            };
            bonxai::xmltree::parse_document(&body).expect("doc parses")
        })
        .collect();
    let sequential: Vec<_> = docs
        .iter()
        .map(|d| compiled.validate_with(d, opts))
        .collect();
    for jobs in [1, 2, 8] {
        let batch = compiled.validate_batch_with_jobs(&docs, opts, jobs);
        assert_eq!(batch.len(), sequential.len());
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.violations, s.violations, "jobs={jobs}");
        }
    }
}
