//! Property-based tests for the XML substrate, at the workspace level:
//! serialize∘parse identity on generated documents and parser robustness
//! on arbitrary inputs.

use proptest::prelude::*;

use bonxai::xmltree::{self, Document, NodeKind};

/// Strategy for XML names.
fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

/// Strategy for text content (valid XML character data; any characters —
/// escaping must handle them).
fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~éü€]{0,20}").expect("valid regex")
}

#[derive(Debug, Clone)]
struct Elem {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    E(Elem),
    T(String),
}

fn arb_elem() -> impl Strategy<Value = Elem> {
    let leaf = (name(), proptest::collection::vec((name(), text()), 0..3)).prop_map(
        |(name, mut attrs)| {
            attrs.sort();
            attrs.dedup_by(|a, b| a.0 == b.0);
            Elem {
                name,
                attrs,
                children: Vec::new(),
            }
        },
    );
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name(),
            proptest::collection::vec((name(), text()), 0..3),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::E),
                    // non-empty text (empty text nodes don't survive
                    // serialization and aren't constructible by parsing)
                    text()
                        .prop_filter("nonempty", |t| !t.is_empty())
                        .prop_map(Node::T)
                ],
                0..4,
            ),
        )
            .prop_map(|(name, mut attrs, children)| {
                attrs.sort();
                attrs.dedup_by(|a, b| a.0 == b.0);
                Elem {
                    name,
                    attrs,
                    children: merge_adjacent_text(children),
                }
            })
    })
}

/// Adjacent text children merge on parse, so the generator avoids them.
fn merge_adjacent_text(children: Vec<Node>) -> Vec<Node> {
    let mut out: Vec<Node> = Vec::new();
    for c in children {
        match (&mut out.last_mut(), c) {
            (Some(Node::T(prev)), Node::T(t)) => prev.push_str(&t),
            (_, c) => out.push(c),
        }
    }
    out
}

fn build(e: &Elem) -> Document {
    let mut doc = Document::new(&e.name);
    let root = doc.root();
    for (k, v) in &e.attrs {
        doc.set_attribute(root, k, v);
    }
    for c in &e.children {
        attach(&mut doc, root, c);
    }
    doc
}

fn attach(doc: &mut Document, parent: xmltree::NodeId, node: &Node) {
    match node {
        Node::T(t) => {
            doc.add_text(parent, t);
        }
        Node::E(e) => {
            let id = doc.add_element(parent, &e.name);
            for (k, v) in &e.attrs {
                doc.set_attribute(id, k, v);
            }
            for c in &e.children {
                attach(doc, id, c);
            }
        }
    }
}

fn docs_equal(a: &Document, b: &Document) -> bool {
    fn node_eq(a: &Document, na: xmltree::NodeId, b: &Document, nb: xmltree::NodeId) -> bool {
        match (a.kind(na), b.kind(nb)) {
            (NodeKind::Text(x), NodeKind::Text(y)) => x == y,
            (
                NodeKind::Element {
                    name: n1,
                    attributes: a1,
                },
                NodeKind::Element {
                    name: n2,
                    attributes: a2,
                },
            ) => {
                n1 == n2
                    && a1 == a2
                    && a.children(na).len() == b.children(nb).len()
                    && a.children(na)
                        .iter()
                        .zip(b.children(nb))
                        .all(|(&ca, &cb)| node_eq(a, ca, b, cb))
            }
            _ => false,
        }
    }
    node_eq(a, a.root(), b, b.root())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn serialize_parse_identity(e in arb_elem()) {
        let doc = build(&e);
        let text = xmltree::to_string(&doc);
        let parsed = xmltree::parse_document(&text).expect("serializer output parses");
        prop_assert!(docs_equal(&doc, &parsed), "text: {text}");
    }

    #[test]
    fn pretty_print_parses(e in arb_elem()) {
        let doc = build(&e);
        let pretty = xmltree::to_string_pretty(&doc);
        let parsed = xmltree::parse_document(&pretty).expect("pretty output parses");
        // structure is preserved (text may gain surrounding whitespace)
        prop_assert_eq!(doc.element_count(), parsed.element_count());
    }

    #[test]
    fn parser_never_panics(input in "[<>a-z&;/\"= !\\[\\]?-]{0,80}") {
        let _ = xmltree::parse_document(&input);
    }

    #[test]
    fn mutated_wellformed_input_never_panics(e in arb_elem(), cut in 0usize..100) {
        let doc = build(&e);
        let mut text = xmltree::to_string(&doc);
        let pos = cut.min(text.len());
        // truncate at a char boundary
        let pos = (0..=pos).rev().find(|&p| text.is_char_boundary(p)).expect("0 is a boundary");
        text.truncate(pos);
        let _ = xmltree::parse_document(&text);
    }

    #[test]
    fn dtd_parser_never_panics(input in "[<>!A-Za-z%;()|,*+?\"# ]{0,80}") {
        let _ = xmltree::dtd::parse_dtd(&input);
    }

    #[test]
    fn bonxai_parser_never_panics(input in "[a-z{}()@/|&*+?,= \\n]{0,80}") {
        let _ = bonxai::core::BonxaiSchema::parse(&input);
    }
}
