//! Edge cases across the stack: counted ancestor patterns, wildcard and
//! anchored rules, XSD emission corner cases, deep documents, and
//! diagnostics quality.

use bonxai::core::translate::TranslateOptions;
use bonxai::core::{pipeline, BonxaiSchema};
use bonxai::xmltree::{builder::elem, parse_document};

/// Section 3.1's counted ancestor pattern `(/a/a)*(@c|@d)` in spirit:
/// counters and anchoring in rule LHS.
#[test]
fn counted_and_anchored_ancestor_patterns() {
    let schema = BonxaiSchema::parse(
        r#"
        global { a }
        grammar {
          a = { (element a)? }
          /a/a/a = { }
        }
    "#,
    )
    .expect("parses");
    // chains of a's; depth exactly 3 must be a leaf
    let chain = |n: usize| {
        let mut b = elem("a");
        for _ in 1..n {
            b = elem("a").child(b);
        }
        // build outermost-in: reconstruct properly
        let mut builder = elem("a");
        let mut inner: Option<bonxai::xmltree::builder::ElementBuilder> = None;
        for _ in 1..n {
            inner = Some(match inner {
                None => elem("a"),
                Some(i) => elem("a").child(i),
            });
        }
        if let Some(i) = inner {
            builder = builder.child(i);
        }
        let _ = b;
        builder.build()
    };
    assert!(schema.is_valid(&chain(1)));
    assert!(schema.is_valid(&chain(2)));
    assert!(schema.is_valid(&chain(3))); // depth-3 leaf: the /a/a/a rule (ε)
    assert!(!schema.is_valid(&chain(4))); // depth-3 node has a child now
}

#[test]
fn repeat_operator_in_ancestor_pattern() {
    // sections at even depth (2 or 4) under pairs: (/s/s){1,2} anchored
    let schema = BonxaiSchema::parse(
        r#"
        global { s }
        grammar {
          s = { (element s)? }
          (/s/s){1,2} = { attribute even }
        }
    "#,
    )
    .expect("parses");
    let d1 = elem("s").build();
    let d2 = elem("s").child(elem("s").attr("even", "y")).build();
    let d2_missing = elem("s").child(elem("s")).build();
    assert!(schema.is_valid(&d1));
    assert!(
        schema.is_valid(&d2),
        "{:?}",
        schema.validate(&d2).structure.violations
    );
    assert!(!schema.is_valid(&d2_missing)); // depth-2 requires @even
}

#[test]
fn xsd_emission_rejects_empty_language_models() {
    use bonxai::core::bxsd::BxsdBuilder;
    use bonxai::xsd::ContentModel;
    use relang::Regex;
    let mut b = BxsdBuilder::new();
    b.start("a");
    b.suffix_rule(&["a"], ContentModel::new(Regex::Empty));
    let bxsd = b.build().expect("builds");
    let (x, _) = bonxai::core::translate::bxsd_to_xsd(
        &bxsd,
        &TranslateOptions {
            minimize: false,
            ..TranslateOptions::default()
        },
    );
    assert!(bonxai::xsd::emit_xsd(&x, None).is_err());
}

#[test]
fn deep_documents_validate_without_overflow() {
    let schema =
        BonxaiSchema::parse("global { a } grammar { a = { (element a)? } }").expect("parses");
    let mut doc = bonxai::xmltree::Document::new("a");
    let mut cur = doc.root();
    for _ in 0..5_000 {
        cur = doc.add_element(cur, "a");
    }
    assert!(schema.is_valid(&doc));
    // and through the pipeline
    let (x, _) = pipeline::bonxai_to_xsd(&schema, &TranslateOptions::default());
    assert!(bonxai::xsd::is_valid(&x, &doc));
}

#[test]
fn deep_document_parses_and_serializes() {
    let depth = 2_000;
    let mut text = String::new();
    for _ in 0..depth {
        text.push_str("<a>");
    }
    for _ in 0..depth {
        text.push_str("</a>");
    }
    let doc = parse_document(&text).expect("deep document parses");
    assert_eq!(doc.element_count(), depth);
    // serialize → reparse is the identity (the innermost element prints
    // self-closed, so lengths differ by design)
    let back = parse_document(&bonxai::xmltree::to_string(&doc)).expect("reparses");
    assert_eq!(back.element_count(), depth);
    assert_eq!(back.depth(), depth);
}

#[test]
fn diagnostics_name_the_failing_rule_context() {
    let schema = BonxaiSchema::parse(
        r#"
        global { r }
        grammar {
          r = { element x }
          x = { type xs:integer }
        }
    "#,
    )
    .expect("parses");
    let doc = parse_document("<r><x>not-a-number</x></r>").expect("parses");
    let report = schema.validate(&doc);
    let messages: Vec<String> = report
        .violations()
        .iter()
        .map(|v| v.kind.to_string())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("xs:integer")),
        "{messages:?}"
    );
}

#[test]
fn priority_within_equal_lhs_last_wins() {
    // two rules with identical LHS: the later one is relevant
    let schema = BonxaiSchema::parse(
        r#"
        global { a }
        grammar {
          a = { element b }
          a = { element c }
          b = { }
          c = { }
        }
    "#,
    )
    .expect("parses");
    assert!(!schema.is_valid(&elem("a").child(elem("b")).build()));
    assert!(schema.is_valid(&elem("a").child(elem("c")).build()));
}

#[test]
fn global_block_with_multiple_roots() {
    let schema = BonxaiSchema::parse(
        r#"
        global { memo, note }
        grammar {
          memo = mixed { }
          note = mixed { }
        }
    "#,
    )
    .expect("parses");
    assert!(schema.is_valid(&elem("memo").text("x").build()));
    assert!(schema.is_valid(&elem("note").text("y").build()));
    assert!(!schema.is_valid(&elem("letter").build()));
}

#[test]
fn xsd_counting_round_trips_through_min_max_occurs() {
    let schema = BonxaiSchema::parse(
        r#"
        global { r }
        grammar {
          r = { element item{2,5} }
          item = { }
        }
    "#,
    )
    .expect("parses");
    let (x, _) = pipeline::bonxai_to_xsd(&schema, &TranslateOptions::default());
    let text = bonxai::xsd::emit_xsd(&x, None).expect("emits");
    assert!(text.contains("minOccurs=\"2\""), "{text}");
    assert!(text.contains("maxOccurs=\"5\""), "{text}");
    let back = bonxai::xsd::parse_xsd(&text).expect("reparses");
    let mk = |n: usize| {
        let mut b = elem("r");
        for _ in 0..n {
            b = b.child(elem("item"));
        }
        b.build()
    };
    for n in 0..8 {
        let expected = (2..=5).contains(&n);
        assert_eq!(schema.is_valid(&mk(n)), expected, "n={n}");
        assert_eq!(bonxai::xsd::is_valid(&back, &mk(n)), expected, "n={n}");
    }
}

#[test]
fn interleave_round_trips_through_xs_all() {
    let schema = BonxaiSchema::parse(
        r#"
        global { r }
        grammar {
          r = { element a & element b? & element c }
          (a|b|c) = { }
        }
    "#,
    )
    .expect("parses");
    let (x, _) = pipeline::bonxai_to_xsd(&schema, &TranslateOptions::default());
    let text = bonxai::xsd::emit_xsd(&x, None).expect("emits");
    assert!(text.contains("xs:all"), "{text}");
    let back = bonxai::xsd::parse_xsd(&text).expect("reparses");
    for (children, ok) in [
        (vec!["a", "c"], true),
        (vec!["c", "a"], true),
        (vec!["b", "c", "a"], true),
        (vec!["a"], false),
        (vec!["a", "b", "b", "c"], false),
    ] {
        let mut b = elem("r");
        for c in &children {
            b = b.child(elem(c));
        }
        let d = b.build();
        assert_eq!(schema.is_valid(&d), ok, "{children:?}");
        assert_eq!(bonxai::xsd::is_valid(&back, &d), ok, "{children:?}");
    }
}

#[test]
fn doctype_public_id_and_multiple_comments() {
    let src = r#"<?xml version="1.0"?>
        <!-- one -->
        <!DOCTYPE r PUBLIC "-//X//DTD Y//EN" "http://x/y.dtd">
        <!-- two -->
        <r/>
        <!-- three -->"#;
    let parsed = bonxai::xmltree::parse(src).expect("parses");
    assert_eq!(parsed.doctype_name.as_deref(), Some("r"));
    assert!(parsed.internal_subset.is_none());
}

#[test]
fn attribute_value_escaping_round_trips_tabs_and_newlines() {
    let mut doc = bonxai::xmltree::Document::new("a");
    doc.set_attribute(doc.root(), "v", "line1\nline2\tend");
    let text = bonxai::xmltree::to_string(&doc);
    assert!(text.contains("&#10;"), "{text}");
    let back = parse_document(&text).expect("parses");
    assert_eq!(back.attribute(back.root(), "v"), Some("line1\nline2\tend"));
}
