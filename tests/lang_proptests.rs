//! Property-based tests for the practical BonXai language: schemas are
//! generated as surface ASTs, printed, re-parsed, and re-lowered — the
//! two lowered schemas must agree on validation verdicts.

use proptest::prelude::*;

use bonxai::core::lang::{
    AncestorPattern, AttributeItem, ChildPattern, Particle, PathExpr, RuleAst, RuleBody, SchemaAst,
    Span,
};
use bonxai::core::BonxaiSchema;
use bonxai::xsd::SimpleType;

const NAMES: &[&str] = &["alpha", "beta", "gamma", "delta"];

fn name() -> impl Strategy<Value = String> {
    proptest::sample::select(NAMES).prop_map(str::to_owned)
}

fn path_expr() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        3 => name().prop_map(PathExpr::Name),
        1 => Just(PathExpr::AnyChain),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(normalize_seq),
            prop::collection::vec(name().prop_map(PathExpr::Name), 2..4).prop_map(PathExpr::Alt),
            inner.prop_map(|p| PathExpr::Star(Box::new(p))),
        ]
    })
}

/// Seqs with adjacent AnyChains collapse on reparse (`////` is not
/// writable), so the generator merges them.
fn normalize_seq(items: Vec<PathExpr>) -> PathExpr {
    let mut out: Vec<PathExpr> = Vec::new();
    for item in items {
        if matches!(item, PathExpr::AnyChain) && matches!(out.last(), Some(PathExpr::AnyChain)) {
            continue;
        }
        out.push(item);
    }
    if out.len() == 1 {
        out.pop().expect("len checked")
    } else {
        PathExpr::Seq(out)
    }
}

fn particle() -> impl Strategy<Value = Particle> {
    let leaf = name().prop_map(Particle::Element);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Particle::Seq),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Particle::Alt),
            inner.clone().prop_map(|p| Particle::Star(Box::new(p))),
            inner.prop_map(|p| Particle::Opt(Box::new(p))),
        ]
    })
}

fn rule() -> impl Strategy<Value = RuleAst> {
    let body = prop_oneof![
        4 => (
            proptest::option::of(particle()),
            prop::collection::vec(
                (name(), any::<bool>()).prop_map(|(n, optional)| AttributeItem {
                    name: n,
                    optional,
                }),
                0..2
            ),
            any::<bool>(),
        )
            .prop_map(|(particle, mut attributes, mixed)| {
                attributes.sort_by(|a, b| a.name.cmp(&b.name));
                attributes.dedup_by(|a, b| a.name == b.name);
                RuleBody::Complex(ChildPattern {
                    open: false,
                    mixed,
                    attributes,
                    attribute_group_refs: Vec::new(),
                    particle,
                })
            }),
        1 => Just(RuleBody::Complex(ChildPattern {
            open: true,
            ..ChildPattern::default()
        })),
        1 => proptest::sample::select(&[
            SimpleType::String,
            SimpleType::Integer,
            SimpleType::Decimal,
        ][..])
        .prop_map(|st| RuleBody::Simple(st, Default::default())),
    ];
    (path_expr(), body).prop_map(|(path, body)| {
        // ancestor paths must be able to match something: ensure the path
        // can match nonempty strings by prefixing AnyChain
        let path = normalize_seq(vec![PathExpr::AnyChain, path]);
        RuleAst {
            pattern: AncestorPattern {
                path,
                attributes: Vec::new(),
                source: String::new(),
            },
            body,
            span: Span::default(),
        }
    })
}

fn schema_ast() -> impl Strategy<Value = SchemaAst> {
    prop::collection::vec(rule(), 1..6).prop_map(|rules| SchemaAst {
        globals: vec![NAMES[0].to_owned()],
        rules,
        ..SchemaAst::default()
    })
}

/// A small fixed document pool over the same names.
fn docs() -> Vec<bonxai::xmltree::Document> {
    use bonxai::xmltree::builder::elem;
    vec![
        elem("alpha").build(),
        elem("alpha").child(elem("beta")).build(),
        elem("alpha")
            .child(elem("beta").child(elem("gamma")))
            .child(elem("delta").text("42"))
            .build(),
        elem("alpha")
            .child(elem("alpha").child(elem("alpha")))
            .build(),
        elem("alpha")
            .child(elem("gamma").attr("x", "1"))
            .child(elem("gamma").text("7"))
            .build(),
        elem("beta").build(), // wrong root
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowering_never_panics(ast in schema_ast()) {
        // UPA violations are legitimate rejections; panics are not.
        let _ = BonxaiSchema::from_ast(ast);
    }

    #[test]
    fn print_parse_lower_agrees(ast in schema_ast()) {
        let Ok(schema) = BonxaiSchema::from_ast(ast) else {
            return Ok(()); // generated content model violated UPA
        };
        let printed = schema.to_source();
        let reparsed = BonxaiSchema::parse(&printed)
            .unwrap_or_else(|e| panic!("printed schema must parse: {e}\n{printed}"));
        for doc in docs() {
            prop_assert_eq!(
                schema.is_valid(&doc),
                reparsed.is_valid(&doc),
                "doc {} under\n{}",
                bonxai::xmltree::to_string(&doc),
                printed
            );
        }
    }

    #[test]
    fn lift_of_lowered_schema_agrees(ast in schema_ast()) {
        let Ok(schema) = BonxaiSchema::from_ast(ast) else {
            return Ok(());
        };
        let lifted = BonxaiSchema::from_bxsd(schema.bxsd.clone());
        let printed = lifted.to_source();
        let reparsed = BonxaiSchema::parse(&printed)
            .unwrap_or_else(|e| panic!("lifted schema must parse: {e}\n{printed}"));
        for doc in docs() {
            prop_assert_eq!(
                schema.is_valid(&doc),
                reparsed.is_valid(&doc),
                "doc {} under\n{}",
                bonxai::xmltree::to_string(&doc),
                printed
            );
        }
    }
}
