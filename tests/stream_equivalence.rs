//! Differential test for the streaming validator: validating an XML
//! byte stream with `validate_stream` must produce a report
//! byte-identical to parsing the same bytes into a tree and validating
//! that — same violations at the same node ids in the same order, same
//! match records — across the product and lock-step engines, in-memory
//! and `io::Read` sources, and compact and pretty serializations
//! (whitespace-only text between children must not change verdicts).

use bonxai_core::bxsd::Bxsd;
use bonxai_core::{BonxaiSchema, CompiledBxsd, ValidateOptions};
use bonxai_gen::{
    mutate_document, random_regular_bxsd, random_suffix_bxsd, sample_document, DocConfig,
    SchemaConfig,
};
use proptest::prelude::*;
use rand::prelude::*;
use xmltree::XmlReader;

const RECORD: ValidateOptions = ValidateOptions {
    record_matches: true,
    force_lockstep: false,
};
const LOCKSTEP: ValidateOptions = ValidateOptions {
    record_matches: true,
    force_lockstep: true,
};

/// Streams `input` through every (engine, source) combination and
/// demands byte-identical reports with tree validation of the same
/// bytes.
fn check_stream_equivalence(bxsd: &Bxsd, input: &str) -> Result<(), TestCaseError> {
    let doc = xmltree::parse_document(input).expect("serialized documents re-parse");
    let compiled = CompiledBxsd::new(bxsd);
    let tiny = CompiledBxsd::with_budget(bxsd, 1);
    prop_assert!(tiny.product_states().is_none(), "budget 1 must overflow");
    for (c, opts) in [(&compiled, RECORD), (&compiled, LOCKSTEP), (&tiny, RECORD)] {
        let tree = c.validate_with(&doc, opts);
        let mut reader = XmlReader::from_str(input);
        let streamed = c
            .validate_stream_with(&mut reader, opts)
            .expect("well-formed input");
        prop_assert_eq!(
            &streamed.violations,
            &tree.violations,
            "stream vs tree violations ({:?}, product states {:?})",
            opts,
            c.product_states()
        );
        prop_assert_eq!(&streamed.matches, &tree.matches, "stream vs tree matches");

        // The io::Read source must behave exactly like the in-memory one.
        let mut reader = XmlReader::from_reader(input.as_bytes());
        let io_streamed = c
            .validate_stream_with(&mut reader, opts)
            .expect("well-formed input");
        prop_assert_eq!(&io_streamed.violations, &streamed.violations, "IoSrc");
        prop_assert_eq!(&io_streamed.matches, &streamed.matches, "IoSrc matches");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn streamed_reports_match_tree_reports(
        seed in any::<u64>(),
        n_names in 3usize..10,
        n_rules in 1usize..10,
        k in 1usize..4,
        suffix in any::<bool>(),
        mutations in 0usize..3,
        pretty in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SchemaConfig {
            n_names,
            n_rules: if suffix { n_rules } else { n_rules.min(4) },
            k,
            ..SchemaConfig::default()
        };
        let bxsd = if suffix {
            random_suffix_bxsd(&cfg, &mut rng)
        } else {
            random_regular_bxsd(&cfg, &mut rng)
        };
        let dfa_xsd = bonxai_core::translate::bxsd_to_dfa_xsd(&bxsd);
        let doc_cfg = DocConfig {
            max_nodes: 60,
            ..DocConfig::default()
        };
        let Some(mut doc) = sample_document(&dfa_xsd, &doc_cfg, &mut rng) else {
            return Ok(());
        };
        // Pretty-printing inserts whitespace-only text nodes between
        // children — reports over those bytes must still agree.
        let render = |d: &xmltree::Document| {
            if pretty { xmltree::to_string_pretty(d) } else { xmltree::to_string(d) }
        };
        check_stream_equivalence(&bxsd, &render(&doc))?;
        for _ in 0..mutations {
            doc = mutate_document(&doc, &mut rng);
            check_stream_equivalence(&bxsd, &render(&doc))?;
        }
    }
}

/// The paper's Figure 4/5 schemas against the Figure 1 document and
/// hand-mutated variants (the acceptance fixtures for streaming).
#[test]
fn figure_schemas_stream_equivalently() {
    let root = env!("CARGO_MANIFEST_DIR");
    let document =
        std::fs::read_to_string(format!("{root}/data/figure1_document.xml")).expect("data");
    let broken_cases = [
        "<document><content/></document>",
        "<document><template/><content><zzz/>stray</content></document>",
        "<wrong-root><document/></wrong-root>",
        "<document><template><section/><section/></template><content/></document>",
        // Coalesce boundaries: text joining across CDATA/comment/PI
        // constructs forces the fused drive loop's text fast path to
        // bail mid-run and splice through the token path; the joined
        // runs (and their whitespace-only verdicts) must match the
        // tree build exactly.
        "<document><template/><content>a<![CDATA[b]]>c</content></document>",
        "<document><template/><content>  <![CDATA[  ]]> <!-- c --> </content></document>",
        "<document><template/><content>&amp;<?pi x?><![CDATA[<&]]>tail</content></document>",
    ];
    for schema in ["figure4.bonxai", "figure5.bonxai"] {
        let src = std::fs::read_to_string(format!("{root}/data/{schema}")).expect("data");
        let schema = BonxaiSchema::parse(&src).expect("figure schemas parse");
        check_stream_equivalence(&schema.bxsd, &document).unwrap();
        for case in broken_cases {
            check_stream_equivalence(&schema.bxsd, case).unwrap();
        }
    }
}
