//! Golden-file tests for the lint pass: every seeded-defect fixture in
//! `examples/lint/` must produce exactly the checked-in JSON report
//! (stable code, span, witness), the clean paper schemas must lint
//! clean, and the JSON renderer must be byte-deterministic.

use std::fs;
use std::path::Path;

use bonxai::core::lang::parse_schema;
use bonxai::core::lint::{
    lint_ast, lint_source, lint_xsd, render_json, Code, LintOptions, LintReport,
};

/// Lints one fixture the way `bonxai lint --format json --notes` does.
fn lint_fixture(path: &Path) -> LintReport {
    let text = fs::read_to_string(path).unwrap();
    let opts = LintOptions {
        include_notes: true,
        ..LintOptions::default()
    };
    if path.extension().is_some_and(|e| e == "xsd") {
        let xsd = bonxai::xsd::parse_xsd_unchecked(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        lint_xsd(&xsd, &opts)
    } else {
        lint_source(&text, &opts).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
    }
}

/// The fixture set: file name → codes the seeded defects must trigger.
const EXPECTED: &[(&str, &[Code])] = &[
    ("dead_rule.bonxai", &[Code::DeadRule]),
    ("unreachable.bonxai", &[Code::UnreachableRule]),
    ("upa.bonxai", &[Code::UpaViolation]),
    // The vacuous `price` rule also renders its `doc` parent context
    // unsatisfiable — BX010's contextual propagation of BX004.
    (
        "vacuous.bonxai",
        &[Code::UnsatisfiableRule, Code::VacuousContent],
    ),
    (
        "undefined_group.bonxai",
        &[Code::UndefinedReference, Code::UndefinedReference],
    ),
    ("unconstrained.bonxai", &[Code::UnconstrainedElement]),
    ("unsat_rule.bonxai", &[Code::UnsatisfiableRule]),
    ("fragment_general.bonxai", &[]),
    ("upa.xsd", &[Code::UpaViolation]),
    ("duplicate_type.xsd", &[Code::UndefinedReference]),
];

#[test]
fn fixtures_trigger_their_seeded_codes() {
    for (name, codes) in EXPECTED {
        let path = Path::new("examples/lint").join(name);
        let report = lint_fixture(&path);
        let found: Vec<Code> = report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .filter(|c| *c != Code::FragmentAdvisory)
            .collect();
        assert_eq!(&found, codes, "{name}: wrong diagnostic set");
        // Every BonXai rule-level diagnostic must carry a real span.
        if name.ends_with(".bonxai") {
            for d in &report.diagnostics {
                if d.code != Code::FragmentAdvisory && d.code != Code::UnconstrainedElement {
                    assert!(d.span.is_known(), "{name}: {} has no span", d.code.as_str());
                }
            }
        }
    }
}

#[test]
fn fixtures_match_golden_json() {
    let mut checked = 0;
    for (name, _) in EXPECTED {
        let path = Path::new("examples/lint").join(name);
        let report = lint_fixture(&path);
        let rendered = render_json(&report, &format!("examples/lint/{name}"));
        let golden_path = Path::new("examples/lint/golden").join(format!("{name}.json"));
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
        assert_eq!(rendered, golden, "{name}: JSON deviates from golden file");
        checked += 1;
    }
    // Every golden file must belong to a live fixture.
    let n_goldens = fs::read_dir("examples/lint/golden").unwrap().count();
    assert_eq!(checked, n_goldens, "stale golden files present");
}

#[test]
fn witnesses_are_concrete() {
    let dead = lint_fixture(Path::new("examples/lint/dead_rule.bonxai"));
    let d = dead
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DeadRule)
        .unwrap();
    assert_eq!(
        d.witness.as_deref(),
        Some("doc/a is claimed by rule 3 `a`"),
        "dead rule must name the shadowing rule with a witness path"
    );

    let upa = lint_fixture(Path::new("examples/lint/upa.bonxai"));
    let d = upa
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UpaViolation)
        .unwrap();
    assert_eq!(
        d.witness.as_deref(),
        Some("a"),
        "UPA witness is the shortest word"
    );
}

#[test]
fn clean_schemas_lint_clean() {
    for path in ["data/figure4.bonxai", "data/figure5.bonxai"] {
        let text = fs::read_to_string(path).unwrap();
        let report = lint_source(&text, &LintOptions::default()).unwrap();
        assert!(
            report.diagnostics.is_empty(),
            "{path}: unexpected diagnostics {:?}",
            report.diagnostics
        );
    }
    let text = fs::read_to_string("data/figure3.xsd").unwrap();
    let xsd = bonxai::xsd::parse_xsd_unchecked(&text).unwrap();
    let report = lint_xsd(&xsd, &LintOptions::default());
    assert!(
        report.diagnostics.is_empty(),
        "figure3.xsd: unexpected diagnostics {:?}",
        report.diagnostics
    );
}

#[test]
fn json_output_is_byte_deterministic() {
    for (name, _) in EXPECTED {
        let path = Path::new("examples/lint").join(name);
        let a = render_json(&lint_fixture(&path), name);
        let b = render_json(&lint_fixture(&path), name);
        assert_eq!(a, b, "{name}: nondeterministic JSON output");
    }
}

#[test]
fn tiny_budgets_surface_bx008_and_bx009() {
    let text = fs::read_to_string("data/figure5.bonxai").unwrap();
    let ast = parse_schema(&text).unwrap();
    let opts = LintOptions {
        include_notes: true,
        reach_budget: 1,
        product_budget: 1,
        ..LintOptions::default()
    };
    let report = lint_ast(&ast, &opts);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::ProductBlowup),
        "product budget of 1 must trigger BX008"
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::BudgetExceeded),
        "reach budget of 1 must trigger BX009"
    );
}

#[test]
fn structural_only_skips_language_analyses() {
    let text = fs::read_to_string("examples/lint/dead_rule.bonxai").unwrap();
    let opts = LintOptions {
        structural_only: true,
        include_notes: true,
        ..LintOptions::default()
    };
    let report = lint_source(&text, &opts).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "structural pass must not run the dead-rule analysis"
    );
}
