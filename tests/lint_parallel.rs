//! Determinism of the parallel multi-schema lint path: rendering the
//! reports of a schema corpus through `map_indexed` (the engine behind
//! `bonxai lint <dir> --jobs N` and `exp_lint --jobs N`) must be
//! byte-identical to the sequential baseline for every worker count —
//! the work-stealing pool may interleave schemas arbitrarily, but every
//! job carries its input index and results come back in input order.
//! Shuffling the submission order must permute the output the same way
//! and change nothing else.

use bonxai::core::lint::{lint_source_with, render_json, render_text, LintOptions};
use bonxai::core::map_indexed;
use bonxai::relang::AutomataCache;

/// A small corpus exercising every semantic check: dead rules (BX001),
/// unreachable rules (BX002), UPA (BX003), vacuous content (BX004),
/// unconstrained elements (BX006), and clean schemas of varying size so
/// the deques actually steal.
fn corpus() -> Vec<(String, String)> {
    let mut schemas = vec![
        (
            "dead.bonxai".to_owned(),
            "global { doc } grammar { \
               doc = { element a } \
               doc/a = { } \
               a = { } }"
                .to_owned(),
        ),
        (
            "unreachable.bonxai".to_owned(),
            "global { doc } grammar { \
               doc = { element b } \
               b = { element c } \
               c/c = { } \
               c = { } }"
                .to_owned(),
        ),
        (
            "upa.bonxai".to_owned(),
            "global { doc } grammar { \
               doc = { (element a, element b)? | (element a, element c)? } \
               a = { } b = { } c = { } }"
                .to_owned(),
        ),
        (
            "clean.bonxai".to_owned(),
            "global { doc } grammar { \
               doc = { (element item | element note)* } \
               item = mixed { } note = mixed { } }"
                .to_owned(),
        ),
    ];
    // Larger generated schemas: a chain of n elements each nesting the
    // next, so per-schema lint cost varies widely across the corpus.
    for n in [3usize, 7, 12] {
        let mut g = String::from("global { e0 } grammar { ");
        for i in 0..n {
            if i + 1 < n {
                g.push_str(&format!("e{i} = {{ element e{} }} ", i + 1));
            } else {
                g.push_str(&format!("e{i} = {{ }} "));
            }
        }
        g.push('}');
        schemas.push((format!("chain{n}.bonxai"), g));
    }
    schemas
}

/// Renders the whole corpus with `jobs` workers, exactly like the CLI
/// directory mode: parallel analysis, sequential in-order rendering.
fn render_all(corpus: &[(String, String)], jobs: usize, json: bool) -> String {
    let opts = LintOptions {
        include_notes: true,
        ..LintOptions::default()
    };
    let reports = map_indexed(corpus.to_vec(), jobs, |(name, text)| {
        let mut cache = AutomataCache::new();
        let report = lint_source_with(&text, &opts, Some(&mut cache)).expect("corpus parses");
        (name, report)
    });
    reports
        .iter()
        .map(|(name, r)| {
            if json {
                render_json(r, name)
            } else {
                render_text(r, name)
            }
        })
        .collect()
}

#[test]
fn parallel_lint_is_byte_identical_for_every_worker_count() {
    let corpus = corpus();
    let baseline_text = render_all(&corpus, 1, false);
    let baseline_json = render_all(&corpus, 1, true);
    assert!(
        baseline_text.contains("BX001"),
        "corpus exercises dead rules"
    );
    assert!(
        baseline_text.contains("BX002"),
        "corpus exercises unreachable rules"
    );
    assert!(baseline_text.contains("BX003"), "corpus exercises UPA");
    for jobs in [2usize, 8] {
        assert_eq!(
            render_all(&corpus, jobs, false),
            baseline_text,
            "text output differs at jobs={jobs}"
        );
        assert_eq!(
            render_all(&corpus, jobs, true),
            baseline_json,
            "json output differs at jobs={jobs}"
        );
    }
}

#[test]
fn shuffled_submission_order_only_permutes_the_output() {
    let corpus = corpus();
    let n = corpus.len();
    // A fixed derangement-ish shuffle: reverse, then swap neighbors.
    let mut order: Vec<usize> = (0..n).rev().collect();
    for pair in order.chunks_mut(2) {
        if pair.len() == 2 {
            pair.swap(0, 1);
        }
    }
    let shuffled: Vec<(String, String)> = order.iter().map(|&i| corpus[i].clone()).collect();
    for jobs in [1usize, 2, 8] {
        let straight = render_all(&corpus, jobs, false);
        let permuted = render_all(&shuffled, jobs, false);
        // Same multiset of per-schema renderings, in the shuffled order.
        let blocks: Vec<String> = corpus
            .iter()
            .map(|item| render_all(std::slice::from_ref(item), 1, false))
            .collect();
        let expect: String = order.iter().map(|&i| blocks[i].clone()).collect();
        assert_eq!(permuted, expect, "jobs={jobs}");
        assert_eq!(
            straight,
            blocks.concat(),
            "in-order output is the block concatenation (jobs={jobs})"
        );
    }
}
