//! Cross-formalism round-trip tests (Lemmas 4–7 and Theorems 12/13 as
//! executable properties): random schemas are pushed through every
//! translation path and the resulting schemas must agree with the
//! original on sampled conforming documents and mutated near-misses.

use bonxai::core::translate::{
    bxsd_to_dfa_xsd, bxsd_to_dfa_xsd_strict, dfa_xsd_to_bxsd, dfa_xsd_to_xsd, k_suffix_dfa_to_bxsd,
    suffix_bxsd_to_dfa_xsd, xsd_to_dfa_xsd,
};
use bonxai::core::validate::is_valid as bxsd_valid;
use bonxai::core::Bxsd;
use bonxai::gen::{mutate_document, random_suffix_bxsd, sample_document, DocConfig, SchemaConfig};
use bonxai::xmltree::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_cfg() -> SchemaConfig {
    SchemaConfig {
        n_names: 6,
        n_rules: 7,
        k: 2,
        max_content_names: 4,
        ..SchemaConfig::default()
    }
}

/// Sampled documents (half mutated) for a schema.
fn docs_for(bxsd: &Bxsd, rng: &mut StdRng, n: usize) -> Vec<Document> {
    let schema = bxsd_to_dfa_xsd(bxsd);
    let mut out = Vec::new();
    for i in 0..n {
        if let Some(doc) = sample_document(&schema, &DocConfig::default(), rng) {
            if i % 2 == 0 {
                out.push(doc);
            } else {
                out.push(mutate_document(&doc, rng));
            }
        }
    }
    out
}

#[test]
fn algorithm3_lazy_agrees_with_strict() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let lazy = bxsd_to_dfa_xsd(&b);
        let strict = bxsd_to_dfa_xsd_strict(&b);
        assert!(lazy.n_states() <= strict.n_states());
        for doc in docs_for(&b, &mut rng, 6) {
            assert_eq!(
                lazy.is_valid(&doc),
                strict.is_valid(&doc),
                "seed {seed}: {}",
                bonxai::xmltree::to_string(&doc)
            );
        }
    }
}

#[test]
fn theorem12_fast_path_agrees_with_algorithm3() {
    for seed in 0..12 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let fast = suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based");
        let slow = bxsd_to_dfa_xsd(&b);
        for doc in docs_for(&b, &mut rng, 8) {
            let expected = bxsd_valid(&b, &doc);
            assert_eq!(fast.is_valid(&doc), expected, "seed {seed} (fast)");
            assert_eq!(slow.is_valid(&doc), expected, "seed {seed} (slow)");
        }
    }
}

#[test]
fn full_bxsd_xsd_bxsd_cycle_preserves_language() {
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        // BXSD -> DFA-based XSD -> XSD -> DFA-based XSD -> BXSD
        let d1 = suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based");
        let x = dfa_xsd_to_xsd(&d1);
        let d2 = xsd_to_dfa_xsd(&x);
        let back = dfa_xsd_to_bxsd(&d2);
        for doc in docs_for(&b, &mut rng, 8) {
            let expected = bxsd_valid(&b, &doc);
            assert_eq!(
                bonxai::xsd::is_valid(&x, &doc),
                expected,
                "seed {seed} (xsd)"
            );
            assert_eq!(d2.is_valid(&doc), expected, "seed {seed} (dfa)");
            assert_eq!(bxsd_valid(&back, &doc), expected, "seed {seed} (back)");
        }
    }
}

#[test]
fn theorem13_reverse_agrees_when_k_suffix() {
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let d = suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based");
        // the AC construction yields a k-suffix schema for suffix-only
        // rule sets; k = 2 here (plus depth effects from exact rules are
        // absent because the generator only emits // rules)
        let back = k_suffix_dfa_to_bxsd(&d, 2, 1_000_000).expect("2-suffix");
        for doc in docs_for(&b, &mut rng, 8) {
            assert_eq!(
                bxsd_valid(&b, &doc),
                bxsd_valid(&back, &doc),
                "seed {seed}: {}",
                bonxai::xmltree::to_string(&doc)
            );
        }
    }
}

#[test]
fn surface_syntax_roundtrip_on_random_schemas() {
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let back =
            bonxai::core::pipeline::bxsd_surface_roundtrip(&b).expect("printed schema reparses");
        for doc in docs_for(&b, &mut rng, 6) {
            assert_eq!(
                bxsd_valid(&b, &doc),
                bxsd_valid(&back, &doc),
                "seed {seed}: schema\n{}",
                b.display()
            );
        }
    }
}

#[test]
fn minimization_preserves_language() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let x = dfa_xsd_to_xsd(&suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based"));
        let m = bonxai::xsd::minimize_types(&x);
        assert!(m.n_types() <= x.n_types());
        for doc in docs_for(&b, &mut rng, 6) {
            assert_eq!(
                bonxai::xsd::is_valid(&x, &doc),
                bonxai::xsd::is_valid(&m, &doc),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn xsd_xml_syntax_roundtrip_on_random_schemas() {
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let x = dfa_xsd_to_xsd(&suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based"));
        let text = bonxai::xsd::emit_xsd(&x, None).expect("emits");
        let back = bonxai::xsd::parse_xsd(&text).expect("reparses");
        for doc in docs_for(&b, &mut rng, 6) {
            assert_eq!(
                bonxai::xsd::is_valid(&x, &doc),
                bonxai::xsd::is_valid(&back, &doc),
                "seed {seed}:\n{text}"
            );
        }
    }
}

#[test]
fn roundtrip_equivalence_is_decided_formally() {
    // Beyond document sampling: *decide* that BonXai → XSD → BonXai
    // preserves the conformance set, using the schema equivalence checker.
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(8000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let original = bxsd_to_dfa_xsd(&b);

        let x = dfa_xsd_to_xsd(&suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based"));
        let minimized = bonxai::xsd::minimize_types(&x);
        let back = bxsd_to_dfa_xsd(&dfa_xsd_to_bxsd(&xsd_to_dfa_xsd(&minimized)));

        assert_eq!(
            bonxai::xsd::check_schemas_equivalent(&original, &back),
            Ok(()),
            "seed {seed}: round trip changed the language of\n{}",
            b.display()
        );
    }
}

#[test]
fn minimization_equivalence_is_decided_formally() {
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let b = random_suffix_bxsd(&small_cfg(), &mut rng);
        let x = dfa_xsd_to_xsd(&suffix_bxsd_to_dfa_xsd(&b).expect("suffix-based"));
        let m = bonxai::xsd::minimize_types(&x);
        assert_eq!(
            bonxai::xsd::check_schemas_equivalent(&xsd_to_dfa_xsd(&x), &xsd_to_dfa_xsd(&m)),
            Ok(()),
            "seed {seed}: minimization changed the language"
        );
    }
}
