//! The native simple-type extension (the paper's Section 5 "most
//! desirable extension"): restriction facets in BonXai syntax, enforced
//! by validation and round-tripped through XML Schema.

use bonxai::core::pipeline;
use bonxai::core::translate::TranslateOptions;
use bonxai::core::BonxaiSchema;
use bonxai::xmltree::parse_document;

const SCHEMA: &str = r#"
    global { order }
    grammar {
      order  = { attribute id, element qty, element status }
      qty    = { type xs:integer { min "1", max "100" } }
      status = { type xs:string { enum "open", enum "shipped", enum "closed" } }
      @id    = { type xs:NMTOKEN { minLength "3", maxLength "8" } }
    }
"#;

fn doc(id: &str, qty: &str, status: &str) -> bonxai::xmltree::Document {
    parse_document(&format!(
        r#"<order id="{id}"><qty>{qty}</qty><status>{status}</status></order>"#
    ))
    .expect("parses")
}

#[test]
fn facets_are_enforced_by_validation() {
    let schema = BonxaiSchema::parse(SCHEMA).expect("schema parses");
    assert!(schema.is_valid(&doc("ord-1", "42", "open")));
    // qty out of range
    assert!(!schema.is_valid(&doc("ord-1", "0", "open")));
    assert!(!schema.is_valid(&doc("ord-1", "101", "open")));
    // qty not an integer at all
    assert!(!schema.is_valid(&doc("ord-1", "many", "open")));
    // status outside the enumeration
    assert!(!schema.is_valid(&doc("ord-1", "42", "lost")));
    // id too short / too long
    assert!(!schema.is_valid(&doc("o1", "42", "open")));
    assert!(!schema.is_valid(&doc("order-00001", "42", "open")));
}

#[test]
fn facets_survive_the_xsd_round_trip() {
    let schema = BonxaiSchema::parse(SCHEMA).expect("schema parses");
    let opts = TranslateOptions::default();
    let (xsd, _) = pipeline::bonxai_to_xsd(&schema, &opts);
    let emitted = bonxai::xsd::emit_xsd(&xsd, None).expect("emits");
    assert!(emitted.contains("xs:restriction"), "{emitted}");
    assert!(emitted.contains("xs:minInclusive"), "{emitted}");
    assert!(emitted.contains("xs:enumeration"), "{emitted}");

    let back_xsd = bonxai::xsd::parse_xsd(&emitted).expect("reparses");
    let (back, _) = pipeline::xsd_to_bonxai(&back_xsd, &opts);
    let back_src = back.to_source();
    let back_schema = BonxaiSchema::parse(&back_src).expect("lifted schema parses");

    for (d, expected) in [
        (doc("ord-1", "42", "open"), true),
        (doc("ord-1", "0", "open"), false),
        (doc("ord-1", "42", "lost"), false),
        (doc("x", "42", "open"), false),
    ] {
        assert_eq!(bonxai::xsd::is_valid(&xsd, &d), expected);
        assert_eq!(bonxai::xsd::is_valid(&back_xsd, &d), expected);
        assert_eq!(
            back_schema.is_valid(&d),
            expected,
            "lifted schema:\n{back_src}"
        );
    }
}

#[test]
fn facets_print_and_reparse() {
    let schema = BonxaiSchema::parse(SCHEMA).expect("schema parses");
    let printed = schema.to_source();
    assert!(printed.contains("min \"1\""), "{printed}");
    assert!(printed.contains("enum \"open\""), "{printed}");
    let again = BonxaiSchema::parse(&printed).expect("printed schema parses");
    assert!(again.is_valid(&doc("ord-1", "42", "open")));
    assert!(!again.is_valid(&doc("ord-1", "0", "open")));
}

#[test]
fn named_simple_types_in_xsd_input() {
    let src = r#"
      <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
        <xs:simpleType name="Percent">
          <xs:restriction base="xs:integer">
            <xs:minInclusive value="0"/>
            <xs:maxInclusive value="100"/>
          </xs:restriction>
        </xs:simpleType>
        <xs:element name="grade" type="Tgrade"/>
        <xs:complexType name="Tgrade">
          <xs:sequence>
            <xs:element name="score" type="Percent"/>
          </xs:sequence>
          <xs:attribute name="weight">
            <xs:simpleType>
              <xs:restriction base="xs:decimal">
                <xs:minInclusive value="0"/>
                <xs:maxInclusive value="1"/>
              </xs:restriction>
            </xs:simpleType>
          </xs:attribute>
        </xs:complexType>
      </xs:schema>"#;
    let x = bonxai::xsd::parse_xsd(src).expect("parses");
    let ok = parse_document(r#"<grade weight="0.5"><score>88</score></grade>"#).unwrap();
    assert!(
        bonxai::xsd::is_valid(&x, &ok),
        "{:?}",
        bonxai::xsd::validate(&x, &ok).violations
    );
    let bad_score = parse_document(r#"<grade><score>101</score></grade>"#).unwrap();
    assert!(!bonxai::xsd::is_valid(&x, &bad_score));
    let bad_weight = parse_document(r#"<grade weight="1.5"><score>50</score></grade>"#).unwrap();
    assert!(!bonxai::xsd::is_valid(&x, &bad_weight));
}

#[test]
fn dtd_enumerations_become_enumeration_facets() {
    let dtd = bonxai::xmltree::dtd::parse_dtd(
        r#"<!ELEMENT a EMPTY> <!ATTLIST a kind (alpha|beta) #REQUIRED>"#,
    )
    .expect("parses");
    let schema = bonxai::core::dtd_import::dtd_to_bonxai(&dtd, &["a"]).expect("converts");
    let ok = parse_document(r#"<a kind="alpha"/>"#).unwrap();
    let bad = parse_document(r#"<a kind="gamma"/>"#).unwrap();
    assert!(schema.is_valid(&ok));
    assert!(!schema.is_valid(&bad));
    // DTD validator agrees
    assert!(bonxai::xmltree::dtd::is_valid(&dtd, &ok));
    assert!(!bonxai::xmltree::dtd::is_valid(&dtd, &bad));
}

#[test]
fn simple_content_with_facets_and_attributes() {
    let schema = BonxaiSchema::parse(
        r#"
        global { price }
        grammar {
          price = { type xs:decimal { min "0" } }
        }
    "#,
    )
    .expect("parses");
    assert!(schema.is_valid(&parse_document("<price>9.99</price>").unwrap()));
    assert!(!schema.is_valid(&parse_document("<price>-1</price>").unwrap()));
    // round trip through XSD (simpleContent restriction form)
    let opts = TranslateOptions::default();
    let (x, _) = pipeline::bonxai_to_xsd(&schema, &opts);
    let text = bonxai::xsd::emit_xsd(&x, None).expect("emits");
    let back = bonxai::xsd::parse_xsd(&text).expect("reparses");
    assert!(bonxai::xsd::is_valid(
        &back,
        &parse_document("<price>1</price>").unwrap()
    ));
    assert!(!bonxai::xsd::is_valid(
        &back,
        &parse_document("<price>-1</price>").unwrap()
    ));
}

/// Table-driven audit of the built-in types' lexical spaces at their
/// boundary values: signs, zero, whitespace (all these types have
/// whiteSpace=collapse, so padding never affects validity), and the
/// exact XSD spellings of the special float values. Each row was chosen
/// because at least one implementation shortcut gets it wrong — e.g.
/// `str::parse::<f64>` accepts `inf`/`Infinity`/`nan`, which are *not*
/// in the `xs:double` lexical space, and an untrimmed `matches!` on
/// booleans rejects `" true "`, which is.
#[test]
fn lexical_space_boundaries() {
    use bonxai::xsd::SimpleType as T;
    #[rustfmt::skip]
    let table: &[(T, &str, bool)] = &[
        // positiveInteger: zero is not positive; signs and padding are fine.
        (T::PositiveInteger, "1", true),
        (T::PositiveInteger, "+1", true),
        (T::PositiveInteger, " 1 ", true),
        (T::PositiveInteger, "0", false),
        (T::PositiveInteger, "+0", false),
        (T::PositiveInteger, "-1", false),
        (T::PositiveInteger, "", false),
        (T::PositiveInteger, "+", false),
        // nonNegativeInteger: -0 is zero, which is non-negative.
        (T::NonNegativeInteger, "0", true),
        (T::NonNegativeInteger, "-0", true),
        (T::NonNegativeInteger, "+0", true),
        (T::NonNegativeInteger, "00", true),
        (T::NonNegativeInteger, "-1", false),
        // integer: leading '+', leading zeros, padding; no decimals.
        (T::Integer, "+42", true),
        (T::Integer, "-0", true),
        (T::Integer, "007", true),
        (T::Integer, "\t-3\n", true),
        (T::Integer, "1.0", false),
        (T::Integer, "1e2", false),
        (T::Integer, "- 1", false),
        // decimal: optional sign, one point, digits somewhere.
        (T::Decimal, "1.", true),
        (T::Decimal, ".5", true),
        (T::Decimal, "+00123.4500", true),
        (T::Decimal, " -0.0 ", true),
        (T::Decimal, ".", false),
        (T::Decimal, "1.0.0", false),
        (T::Decimal, "1e2", false),
        (T::Decimal, "NaN", false),
        // double: decimal-with-exponent plus exactly INF / -INF / NaN.
        (T::Double, "1e308", true),
        (T::Double, "-1.5E-10", true),
        (T::Double, "INF", true),
        (T::Double, "-INF", true),
        (T::Double, "NaN", true),
        (T::Double, " NaN ", true),
        (T::Double, "inf", false),
        (T::Double, "Infinity", false),
        (T::Double, "-Infinity", false),
        (T::Double, "nan", false),
        (T::Double, "+INF", false),
        (T::Double, "0x10", false),
        // boolean: the four lexical forms, padded or not; nothing else.
        (T::Boolean, "true", true),
        (T::Boolean, " true ", true),
        (T::Boolean, "\n0\t", true),
        (T::Boolean, "TRUE", false),
        (T::Boolean, "tru", false),
        (T::Boolean, "10", false),
        // date / time / dateTime: field ranges, with padding allowed.
        (T::Date, "2026-08-08", true),
        (T::Date, " 2026-08-08 ", true),
        (T::Date, "2026-13-01", false),
        (T::Date, "2026-00-10", false),
        (T::Date, "26-08-08", false),
        (T::Time, "23:59:60", true),
        (T::Time, " 00:00:00.5 ", true),
        (T::Time, "24:00:00", false),
        (T::Time, "12:60:00", false),
        (T::DateTime, "2026-08-08T12:30:00", true),
        (T::DateTime, "\t2026-08-08T12:30:00\n", true),
        (T::DateTime, "2026-08-08 12:30:00", false),
        (T::DateTime, "2026-08-08T99:00:00", false),
    ];
    for &(ty, value, expect) in table {
        assert_eq!(
            ty.validates(value),
            expect,
            "{ty}.validates({value:?}) should be {expect}"
        );
    }
}
