//! Differential test for the incremental engine: after any script of
//! edits applied through the `xmltree::Document` mutation API,
//! `CompiledBxsd::revalidate` over the edit log must produce reports
//! byte-identical to a fresh `validate` of the edited tree AND to the
//! derivative-based oracle — on random schemas, random documents, and
//! random edit scripts (attribute set/remove, text, child
//! insert/remove, subtree and root replacement), including schemas
//! whose relevance product overflows the budget (the lock-step
//! fallback degrades to stored full runs) and edits that flip validity
//! in both directions.

use bonxai_core::bxsd::Bxsd;
use bonxai_core::{BonxaiSchema, CompiledBxsd};
use bonxai_gen::{
    random_edit, random_regular_bxsd, random_suffix_bxsd, sample_document, DocConfig, SchemaConfig,
};
use proptest::prelude::*;
use rand::prelude::*;
use xmltree::{Document, Edit};

/// Revalidates after each edit and cross-checks against a fresh run,
/// the oracle, and (verdict-level, through serialize + reparse with
/// whatever lexer engine is active) the parser front end.
fn check_script(
    bxsd: &Bxsd,
    compiled: &CompiledBxsd<'_>,
    doc: &mut Document,
    n_edits: usize,
    rng: &mut StdRng,
) -> Result<(), TestCaseError> {
    doc.enable_edit_log();
    let mut state = compiled.validate_persistent(doc);
    prop_assert_eq!(
        &state.report().violations,
        &compiled.validate(doc).violations,
        "persistent state must start byte-identical to a fresh run"
    );
    let mut from = state.generation();
    for k in 0..n_edits {
        random_edit(bxsd, doc, rng);
        let edits: Vec<(u64, Edit)> = doc.edit_log().unwrap().since(from).to_vec();
        let got = compiled.revalidate(doc, &mut state, &edits);
        from = state.generation();
        let fresh = compiled.validate(doc);
        prop_assert_eq!(
            &got.violations,
            &fresh.violations,
            "revalidate vs fresh validate after edit {} (incremental: {})",
            k,
            state.is_incremental()
        );
        let want = bonxai_core::oracle::validate(bxsd, doc);
        prop_assert_eq!(
            &got.violations,
            &want.violations,
            "revalidate vs oracle after edit {}",
            k
        );
    }
    // One front-end leg so the BONXAI_NO_SIMD CI pass exercises both
    // lexer engines: the serialized edited tree must reparse to the
    // same verdict (node ids are renumbered, so verdict-level only).
    let reparsed =
        xmltree::parse_document(&xmltree::to_string(doc)).expect("edited tree serializes clean");
    prop_assert_eq!(
        state.report().is_valid(),
        compiled.validate(&reparsed).is_valid(),
        "reparsed verdict differs"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn revalidate_matches_fresh_validate_and_oracle(
        seed in any::<u64>(),
        n_names in 3usize..10,
        n_rules in 1usize..8,
        k in 1usize..4,
        suffix in any::<bool>(),
        n_edits in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SchemaConfig {
            n_names,
            n_rules: if suffix { n_rules } else { n_rules.min(4) },
            k,
            ..SchemaConfig::default()
        };
        let bxsd = if suffix {
            random_suffix_bxsd(&cfg, &mut rng)
        } else {
            random_regular_bxsd(&cfg, &mut rng)
        };
        let dfa_xsd = bonxai_core::translate::bxsd_to_dfa_xsd(&bxsd);
        let doc_cfg = DocConfig {
            max_nodes: 60,
            ..DocConfig::default()
        };
        let Some(mut doc) = sample_document(&dfa_xsd, &doc_cfg, &mut rng) else {
            // Schema admits no finite document — nothing to edit.
            return Ok(());
        };
        // A budget of 1 can never hold the product, so `tiny_budget`
        // exercises revalidate's lock-step full-run fallback.
        let compiled = if tiny_budget {
            CompiledBxsd::with_budget(&bxsd, 1)
        } else {
            CompiledBxsd::new(&bxsd)
        };
        check_script(&bxsd, &compiled, &mut doc, n_edits, &mut rng)?;
    }
}

const SCHEMA: &str = "global { doc } grammar { \
     doc = { attribute title, (element item)* } \
     item = { } }";

/// A directed flip: valid → invalid (required attribute removed) →
/// valid again, each step revalidated against a fresh run.
#[test]
fn edits_flip_validity_in_both_directions() {
    let schema = BonxaiSchema::parse(SCHEMA).unwrap();
    let compiled = CompiledBxsd::new(&schema.bxsd);
    let mut doc = Document::new("doc");
    doc.set_attribute(doc.root(), "title", "t");
    doc.add_element(doc.root(), "item");
    doc.enable_edit_log();
    let mut state = compiled.validate_persistent(&doc);
    assert!(state.report().is_valid());

    let mut from = state.generation();
    let root = doc.root();
    doc.remove_attribute(root, "title");
    let edits: Vec<_> = doc.edit_log().unwrap().since(from).to_vec();
    let got = compiled.revalidate(&doc, &mut state, &edits);
    assert!(!got.is_valid(), "missing required attribute");
    assert_eq!(got.violations, compiled.validate(&doc).violations);

    from = state.generation();
    doc.set_attribute(root, "title", "back");
    let edits: Vec<_> = doc.edit_log().unwrap().since(from).to_vec();
    let got = compiled.revalidate(&doc, &mut state, &edits);
    assert!(got.is_valid(), "attribute restored");
    assert_eq!(got.violations, compiled.validate(&doc).violations);
}

/// A directed root edit: replacing the root (allowed name ↔ unknown
/// name) goes through revalidate's full-run path and stays
/// byte-identical to fresh validation.
#[test]
fn root_replacement_revalidates_exactly() {
    let schema = BonxaiSchema::parse(SCHEMA).unwrap();
    let compiled = CompiledBxsd::new(&schema.bxsd);
    let mut doc = Document::new("doc");
    doc.set_attribute(doc.root(), "title", "t");
    doc.enable_edit_log();
    let mut state = compiled.validate_persistent(&doc);
    assert!(state.report().is_valid());

    let mut src = Document::new("intruder");
    let from = state.generation();
    let root = doc.root();
    doc.replace_subtree(root, &src, src.root());
    let edits: Vec<_> = doc.edit_log().unwrap().since(from).to_vec();
    let got = compiled.revalidate(&doc, &mut state, &edits);
    assert!(!got.is_valid(), "intruder root is not a start element");
    assert_eq!(got.violations, compiled.validate(&doc).violations);

    // And back to an allowed root, with the required attribute.
    src = Document::new("doc");
    src.set_attribute(src.root(), "title", "t2");
    let from = state.generation();
    let root = doc.root();
    doc.replace_subtree(root, &src, src.root());
    let edits: Vec<_> = doc.edit_log().unwrap().since(from).to_vec();
    let got = compiled.revalidate(&doc, &mut state, &edits);
    assert!(got.is_valid(), "allowed root restored");
    assert_eq!(got.violations, compiled.validate(&doc).violations);
}
