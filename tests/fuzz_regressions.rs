//! Minimized reproducers for the bugs the fuzz/differential harness
//! found, checked in as regression tests. Each case names the failure
//! it used to trigger; if one regresses, the assertion message points
//! straight at the reintroduced bug.

use bonxai::core::{conformance, BonxaiSchema};
use bonxai::xmltree::dtd::parse_dtd;

/// A self-referential parameter entity used to recurse until the stack
/// overflowed — an abort, not even a catchable panic. It must come back
/// as a positioned parse error naming the cycle.
#[test]
fn dtd_recursive_parameter_entity_is_an_error() {
    let err = parse_dtd("<!ENTITY % a \"%a;\"> %a;").expect_err("must not hang or crash");
    assert!(
        err.to_string().contains("recursively"),
        "want a recursion diagnostic, got: {err}"
    );
}

/// The two-entity cycle caught the same way (the cycle check must track
/// the whole expansion stack, not just the immediate name).
#[test]
fn dtd_mutually_recursive_parameter_entities_are_an_error() {
    let err = parse_dtd("<!ENTITY % a \"%b;\"> <!ENTITY % b \"%a;\"> %a;")
        .expect_err("must not hang or crash");
    assert!(
        err.to_string().contains("recursively"),
        "want a recursion diagnostic, got: {err}"
    );
}

/// Non-cyclic but absurdly deep entity chains are cut off by a depth
/// cap rather than by the process stack.
#[test]
fn dtd_deep_parameter_entity_chain_is_bounded() {
    let mut dtd = String::new();
    dtd.push_str("<!ENTITY % e0 \"<!ELEMENT x EMPTY>\">");
    for i in 1..=40 {
        dtd.push_str(&format!("<!ENTITY % e{i} \"%e{};\">", i - 1));
    }
    dtd.push_str("%e40;");
    let err = parse_dtd(&dtd).expect_err("must hit the depth cap");
    assert!(
        err.to_string().contains("nested more than"),
        "want a depth diagnostic, got: {err}"
    );
}

/// Deeply nested parentheses in a content model recursed once per `(`
/// and overflowed the stack. Both the group and choice forms.
#[test]
fn dtd_deeply_nested_content_model_is_an_error() {
    for open in ["(", "(b|"] {
        let input = format!(
            "<!ELEMENT a {}b{}>",
            open.repeat(100_000),
            ")".repeat(100_000)
        );
        let err = parse_dtd(&input).expect_err("must not overflow the stack");
        assert!(
            err.to_string().contains("parentheses"),
            "want a nesting diagnostic, got: {err}"
        );
    }
    // Well under the cap still parses.
    let fine = format!("<!ELEMENT a {}b{}>", "(".repeat(100), ")".repeat(100));
    parse_dtd(&fine).expect("shallow nesting is fine");
}

/// `xs:pattern` (and any other unsupported facet) inside a
/// simpleContent restriction was silently dropped: the schema was
/// accepted but enforced strictly less than it declared. It must be
/// rejected, exactly as the same facet already was in `xs:simpleType`.
#[test]
fn unsupported_facet_in_simple_content_is_rejected() {
    let xsd = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="a" type="T"/>
  <xs:complexType name="T">
    <xs:simpleContent>
      <xs:restriction base="xs:string">
        <xs:pattern value="[a-z]+"/>
      </xs:restriction>
    </xs:simpleContent>
  </xs:complexType>
</xs:schema>"#;
    let err = bonxai::xsd::parse_xsd(xsd).expect_err("pattern must not be silently dropped");
    assert!(
        err.to_string().contains("pattern"),
        "want the facet named, got: {err}"
    );
}

/// `str::parse::<f64>` accepts Rust float spellings (`inf`, `Infinity`,
/// `nan`) that are not in the `xs:double` lexical space; documents
/// carrying them validated as correct. Checked end to end across every
/// path so the fix can never drift between oracle and fast validators.
#[test]
fn double_rust_spellings_are_invalid_everywhere() {
    let schema = BonxaiSchema::parse("global { m } grammar { m = { type xs:double } }").unwrap();
    for (value, expect_valid) in [
        ("INF", true),
        ("-INF", true),
        ("NaN", true),
        ("1.5e10", true),
        (" 2.5 ", true),
        ("inf", false),
        ("Infinity", false),
        ("-Infinity", false),
        ("nan", false),
        ("+INF", false),
    ] {
        let outcome = conformance::check(&schema.bxsd, &format!("<m>{value}</m>"), true);
        assert!(outcome.divergences.is_empty(), "{value}: paths disagree");
        assert_eq!(
            outcome.verdict(),
            Some(expect_valid),
            "<m>{value}</m> should be {}",
            if expect_valid { "valid" } else { "invalid" }
        );
    }
}

/// Booleans (whiteSpace=collapse) rejected padded values the XML
/// ecosystem routinely produces; dates and times had the same gap.
#[test]
fn collapsed_whitespace_is_accepted_everywhere() {
    let schema = BonxaiSchema::parse(
        "global { r } grammar {
           r = { attribute on, element when }
           when = { type xs:dateTime }
           @on = { type xs:boolean }
         }",
    )
    .unwrap();
    for (doc, expect_valid) in [
        (
            "<r on=\" true \"><when> 2026-08-08T12:30:00 </when></r>",
            true,
        ),
        ("<r on=\"false\"><when>2026-08-08T12:30:00</when></r>", true),
        (
            "<r on=\" tru e \"><when>2026-08-08T12:30:00</when></r>",
            false,
        ),
        (
            "<r on=\"true\"><when>2026-08-08T 12:30:00</when></r>",
            false,
        ),
    ] {
        let outcome = conformance::check(&schema.bxsd, doc, true);
        assert!(outcome.divergences.is_empty(), "{doc}: paths disagree");
        assert_eq!(outcome.verdict(), Some(expect_valid), "{doc}");
    }
}

/// Bounded fuzz smoke: a fixed-seed slice of the full fuzz campaign
/// runs on every test invocation, so the harness itself (generators,
/// mutation, shrinking, panic capture) stays exercised and a freshly
/// introduced panic or divergence in the stack is caught in CI, not
/// just by whoever next runs `bonxai conform --fuzz`.
#[test]
fn fuzz_smoke_finds_nothing() {
    let validation = bonxai::gen::fuzz_validation(0xB0, 60);
    assert!(
        validation.findings.is_empty(),
        "validation fuzz found bugs: {:#?}",
        validation.findings
    );
    assert!(validation.iterations > 0);
    let dtd = bonxai::gen::fuzz_dtd(0xB0, 60);
    assert!(
        dtd.findings.is_empty(),
        "dtd fuzz found bugs: {:#?}",
        dtd.findings
    );
}
