//! Self-checking tests for the whole-schema analysis engine
//! (`core::analysis`): every witness document a diff emits must validate
//! against exactly one of the two input schemas — by tree AND stream
//! validation — reports must be byte-identical for any worker count,
//! `diff A A` is always equivalent, direction counts are symmetric, and
//! claimed inclusions are cross-checked against independently sampled
//! conforming documents.

use bonxai::core::analysis::{analyze_sat, diff_bxsd, AnalysisOptions, Direction};
use bonxai::core::{Bxsd, CompiledBxsd, ValidateOptions};
use bonxai::gen::{diff_pair_corpus, random_suffix_bxsd, SchemaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xmltree::XmlReader;

/// Validates `input` against `bxsd` by tree and stream, demanding the
/// two paths agree, and returns the shared verdict.
fn is_valid_both_ways(bxsd: &Bxsd, input: &str) -> bool {
    let compiled = CompiledBxsd::new(bxsd);
    let doc = xmltree::parse_document(input).expect("witness documents are well-formed XML");
    let opts = ValidateOptions::default();
    let tree = compiled.validate_with(&doc, opts);
    let mut reader = XmlReader::from_str(input);
    let streamed = compiled
        .validate_stream_with(&mut reader, opts)
        .expect("witness documents stream cleanly");
    assert_eq!(
        tree.is_valid(),
        streamed.is_valid(),
        "tree and stream validation disagree on witness {input}"
    );
    tree.is_valid()
}

#[test]
fn witnesses_validate_against_exactly_one_schema() {
    let corpus = diff_pair_corpus(41, 24);
    let opts = AnalysisOptions::default();
    let mut checked = 0;
    for pair in &corpus {
        let report = diff_bxsd(&pair.a, &pair.b, &opts, None).expect("diff within budget");
        assert_eq!(
            report.stats.dropped, 0,
            "pair {}: dropped candidates",
            pair.id
        );
        for w in &report.witnesses {
            let (pos, neg) = match w.direction {
                Direction::OnlyInA => (&pair.a, &pair.b),
                Direction::OnlyInB => (&pair.b, &pair.a),
            };
            assert!(
                is_valid_both_ways(pos, &w.document),
                "pair {}: witness not valid in its positive schema: {}",
                pair.id,
                w.document
            );
            assert!(
                !is_valid_both_ways(neg, &w.document),
                "pair {}: witness also valid in its negative schema: {}",
                pair.id,
                w.document
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "corpus produced no witnesses to check");
}

#[test]
fn diff_of_a_schema_with_itself_is_equivalent() {
    let mut rng = StdRng::seed_from_u64(7);
    let opts = AnalysisOptions::default();
    for _ in 0..12 {
        let a = random_suffix_bxsd(&SchemaConfig::default(), &mut rng);
        let report = diff_bxsd(&a, &a, &opts, None).expect("diff within budget");
        assert!(report.equivalent(), "A vs A must be equivalent: {report:?}");
        assert!(report.witnesses.is_empty());
    }
}

#[test]
fn diff_is_symmetric_up_to_direction() {
    let corpus = diff_pair_corpus(43, 12);
    let opts = AnalysisOptions::default();
    for pair in &corpus {
        let ab = diff_bxsd(&pair.a, &pair.b, &opts, None).expect("diff within budget");
        let ba = diff_bxsd(&pair.b, &pair.a, &opts, None).expect("diff within budget");
        assert_eq!(ab.a_only, ba.b_only, "pair {}", pair.id);
        assert_eq!(ab.b_only, ba.a_only, "pair {}", pair.id);
        let docs = |r: &bonxai::core::analysis::DiffReport, d: Direction| -> Vec<String> {
            r.witnesses
                .iter()
                .filter(|w| w.direction == d)
                .map(|w| w.document.clone())
                .collect()
        };
        assert_eq!(
            docs(&ab, Direction::OnlyInA),
            docs(&ba, Direction::OnlyInB),
            "pair {}: A-only witnesses must match under swap",
            pair.id
        );
        assert_eq!(
            docs(&ab, Direction::OnlyInB),
            docs(&ba, Direction::OnlyInA),
            "pair {}: B-only witnesses must match under swap",
            pair.id
        );
    }
}

#[test]
fn reports_are_identical_for_any_job_count() {
    let corpus = diff_pair_corpus(47, 8);
    for pair in &corpus {
        let base = diff_bxsd(&pair.a, &pair.b, &AnalysisOptions::default(), None)
            .expect("diff within budget");
        for jobs in [2, 5, 16] {
            let opts = AnalysisOptions {
                jobs,
                ..AnalysisOptions::default()
            };
            let r = diff_bxsd(&pair.a, &pair.b, &opts, None).expect("diff within budget");
            assert_eq!(r.witnesses, base.witnesses, "pair {} jobs {jobs}", pair.id);
            assert_eq!(r.evolution, base.evolution, "pair {} jobs {jobs}", pair.id);
        }
    }
}

/// Cross-checks the diff's *inclusion* claims against an independent
/// oracle: documents sampled from each schema's own generator. If the
/// diff claims `A ⊆ B` (no A-only witnesses), then every sampled
/// A-conforming document must be B-valid, and vice versa.
#[test]
fn claimed_inclusions_hold_on_sampled_documents() {
    use bonxai::core::translate::bxsd_to_dfa_xsd;
    use bonxai::gen::{sample_document, DocConfig};

    let corpus = diff_pair_corpus(53, 16);
    let opts = AnalysisOptions::default();
    let mut rng = StdRng::seed_from_u64(99);
    let mut cross_checked = 0;
    for pair in &corpus {
        let report = diff_bxsd(&pair.a, &pair.b, &opts, None).expect("diff within budget");
        let sides = [
            (&pair.a, &pair.b, report.a_only == 0), // claim: A ⊆ B
            (&pair.b, &pair.a, report.b_only == 0), // claim: B ⊆ A
        ];
        for (sub, sup, claimed) in sides {
            if !claimed {
                continue;
            }
            let dfa = bxsd_to_dfa_xsd(sub);
            for _ in 0..8 {
                let Some(doc) = sample_document(&dfa, &DocConfig::default(), &mut rng) else {
                    break; // schema admits no documents: inclusion is vacuous
                };
                let text = xmltree::to_string(&doc);
                if !is_valid_both_ways(sub, &text) {
                    continue; // sampler works at datatype granularity; skip near-misses
                }
                assert!(
                    is_valid_both_ways(sup, &text),
                    "pair {}: diff claimed inclusion but sampled document escapes: {text}",
                    pair.id
                );
                cross_checked += 1;
            }
        }
    }
    assert!(
        cross_checked > 50,
        "oracle exercised too rarely: {cross_checked}"
    );
}

#[test]
fn sat_witnesses_validate() {
    let mut rng = StdRng::seed_from_u64(11);
    let opts = AnalysisOptions::default();
    let mut satisfiable = 0;
    for _ in 0..20 {
        let bxsd = random_suffix_bxsd(&SchemaConfig::default(), &mut rng);
        let report = analyze_sat(&bxsd, &opts, None).expect("sat within budget");
        if let Some(w) = &report.witness {
            assert!(
                is_valid_both_ways(&bxsd, w),
                "sat witness does not validate: {w}"
            );
            satisfiable += 1;
        }
    }
    assert!(satisfiable > 10, "suffix corpus mostly satisfiable");
}
