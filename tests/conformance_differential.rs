//! Differential conformance: every document pair in `data/conformance/`
//! runs through the oracle and all four fast paths (tree/stream ×
//! product/lock-step), under every available lexer engine and both byte
//! sources. Any verdict, violation-list, or match-map disagreement
//! fails the test — divergence is a bug, never tolerance.
//!
//! Filenames encode the expected verdict: `valid_*.xml` must conform,
//! `invalid_*.xml` must not. The expectation is checked against the
//! *agreed* report, so a corpus document can never silently rot into
//! testing nothing.

use std::fs;
use std::path::Path;

use bonxai_core::{conformance, BonxaiSchema};

/// All `(schema, document, expect_valid)` triples in the corpus.
fn corpus() -> Vec<(String, String, bool)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("data/conformance");
    let mut out = Vec::new();
    let mut dirs: Vec<_> = fs::read_dir(&root)
        .expect("data/conformance exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let schema = dir.join("schema.bonxai");
        assert!(schema.exists(), "{} lacks schema.bonxai", dir.display());
        let mut docs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "xml"))
            .collect();
        docs.sort();
        assert!(!docs.is_empty(), "{} has no documents", dir.display());
        for doc in docs {
            let name = doc.file_name().unwrap().to_string_lossy().into_owned();
            let expect_valid = if name.starts_with("valid_") {
                true
            } else if name.starts_with("invalid_") {
                false
            } else {
                panic!(
                    "{}: corpus files must be valid_*.xml or invalid_*.xml",
                    doc.display()
                );
            };
            out.push((
                schema.to_string_lossy().into_owned(),
                doc.to_string_lossy().into_owned(),
                expect_valid,
            ));
        }
    }
    assert!(out.len() >= 20, "corpus unexpectedly small: {}", out.len());
    out
}

#[test]
fn corpus_agrees_across_all_paths() {
    let mut schemas: std::collections::HashMap<String, BonxaiSchema> = Default::default();
    for (schema_path, doc_path, expect_valid) in corpus() {
        let schema = schemas.entry(schema_path.clone()).or_insert_with(|| {
            let text = fs::read_to_string(&schema_path).unwrap();
            BonxaiSchema::parse(&text).unwrap_or_else(|e| panic!("{schema_path}: {e}"))
        });
        let input = fs::read_to_string(&doc_path).unwrap();
        let outcome = conformance::check(&schema.bxsd, &input, true);
        assert!(
            outcome.divergences.is_empty(),
            "{doc_path}: {} divergence(s):\n{}",
            outcome.divergences.len(),
            outcome
                .divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let verdict = outcome.verdict().expect("corpus documents are well-formed");
        assert_eq!(
            verdict,
            expect_valid,
            "{doc_path}: all paths agree on {} but filename expects {}\noracle report: {:?}",
            if verdict { "valid" } else { "invalid" },
            if expect_valid { "valid" } else { "invalid" },
            outcome.oracle
        );
    }
}

/// Malformed inputs must be rejected unanimously, with identical
/// errors, by every engine and source.
#[test]
fn malformed_inputs_rejected_unanimously() {
    let schema = BonxaiSchema::parse("global { a } grammar { a = mixed { } }").unwrap();
    for input in [
        "<a>",
        "<a></b>",
        "<a attr=oops/>",
        "<a><![CDATA[x</a>",
        "<a>&undefined;</a>",
        "<a><b attr='1' attr='2'/></a>",
        "<",
        "",
        "<a/><a/>",
        "<a>&#0;</a>",
        "<a><?bad",
    ] {
        let outcome = conformance::check(&schema.bxsd, input, true);
        assert!(
            outcome.oracle.is_none(),
            "{input:?}: expected a parse failure"
        );
        assert!(
            outcome.divergences.is_empty(),
            "{input:?}: engines disagree:\n{}",
            outcome
                .divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// An `io::Read` that yields at most a few bytes per call. Streaming
/// through it forces the incremental reader to refill constantly, so a
/// large document crosses the window-compaction threshold many times
/// with token boundaries landing at every possible window offset.
struct Dribble<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl std::io::Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        // Vary the dribble size so refill boundaries drift.
        self.step = self.step % 7 + 1;
        Ok(n)
    }
}

/// Corpus schemas against synthesized *large* documents (tens of KiB of
/// mixed text and repeated elements), streamed byte-by-byte: the report
/// must be identical to tree validation and the oracle even while the
/// io window slides and compacts under the lexer.
#[test]
fn window_compaction_preserves_reports() {
    use bonxai_core::{CompiledBxsd, ValidateOptions};
    use xmltree::XmlReader;

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("data/conformance");
    let filler = "lorem ipsum dolor sit amet, consectetur adipiscing elit sed do ".repeat(80);
    let lines: String = (0..49)
        .map(|i| format!("<line>{filler}{i}</line>"))
        .collect();
    let cases = [
        (
            "pathological",
            format!(
                "<run><stage><beat/><beat/><beat/></stage><stage><beat/><beat/><beat/></stage>\
                 <report>{lines}</report></run>"
            ),
        ),
        (
            "pathological",
            // Same bulk, plus a violation *after* the large report (a
            // second report) so late node ids survive the compactions.
            format!(
                "<run><stage><beat/><beat/><beat/></stage><stage><beat/><beat/><beat/></stage>\
                 <report>{lines}</report><report/></run>"
            ),
        ),
        (
            "docbook",
            format!(
                "<article><title>big</title><para>{filler}<emphasis>{filler}</emphasis>{filler}\
                 </para><para><xref/></para></article>"
            ),
        ),
    ];
    for (suite, input) in cases {
        assert!(
            input.len() > 2 * 4096,
            "case must cross the compaction threshold"
        );
        let text = fs::read_to_string(root.join(suite).join("schema.bonxai")).unwrap();
        let schema = BonxaiSchema::parse(&text).unwrap();
        let compiled = CompiledBxsd::new(&schema.bxsd);
        let doc = xmltree::parse_document(&input).expect("well-formed");
        let opts = ValidateOptions {
            record_matches: true,
            force_lockstep: false,
        };
        let want = bonxai_core::oracle::validate_with(&schema.bxsd, &doc, true);
        assert_eq!(
            compiled.validate_with(&doc, opts).violations,
            want.violations
        );
        for step in [1, 3, 5] {
            let mut reader = XmlReader::from_reader(Dribble {
                data: input.as_bytes(),
                pos: 0,
                step,
            });
            let got = compiled
                .validate_stream_with(&mut reader, opts)
                .expect("well-formed");
            assert_eq!(
                got.violations, want.violations,
                "{suite} dribble step {step}"
            );
            assert_eq!(got.matches, want.matches, "{suite} dribble step {step}");
        }
    }
}
