//! Experiment E1/E2: the paper's figures, machine-checked.
//!
//! Figure 1 (the example document) must validate against Figure 2 (the
//! DTD), Figure 3 (the XSD), Figure 4 (the DTD-equivalent BonXai schema),
//! and Figure 5 (the XSD-equivalent BonXai schema); translations between
//! them must preserve the verdicts on positive and negative documents.

use bonxai::core::pipeline;
use bonxai::core::translate::TranslateOptions;
use bonxai::core::{dtd_import, BonxaiSchema};
use bonxai::xmltree::{self, dtd, Document};

fn data(name: &str) -> String {
    std::fs::read_to_string(format!("{}/data/{name}", env!("CARGO_MANIFEST_DIR")))
        .unwrap_or_else(|e| panic!("missing data file {name}: {e}"))
}

fn figure1() -> Document {
    xmltree::parse_document(&data("figure1_document.xml")).expect("figure 1 parses")
}

fn figure2_dtd() -> dtd::Dtd {
    dtd::parse_dtd(&data("figure2.dtd")).expect("figure 2 parses")
}

fn figure3_xsd() -> bonxai::xsd::Xsd {
    bonxai::xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3 parses")
}

fn figure4() -> BonxaiSchema {
    BonxaiSchema::parse(&data("figure4.bonxai")).expect("figure 4 parses")
}

fn figure5() -> BonxaiSchema {
    BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5 parses")
}

/// Negative variants of the example document, each exercising a
/// context-sensitive distinction (valid under the DTD, invalid under the
/// XSD/Figure-5 schema) or a plain structural error (invalid everywhere).
fn title_less_content_section() -> Document {
    // content sections require a title in Fig. 3/5 but not in the DTD
    let mut doc = figure1();
    let content = doc
        .elements()
        .into_iter()
        .find(|&n| doc.name(n) == Some("content"))
        .expect("content exists");
    doc.add_element(content, "section");
    doc
}

fn text_in_template_section() -> Document {
    // template sections must not contain text per Fig. 3/5; the DTD's
    // single section rule allows text everywhere
    let mut doc = figure1();
    let template = doc
        .elements()
        .into_iter()
        .find(|&n| doc.name(n) == Some("template"))
        .expect("template exists");
    let section = doc.element_children(template).next().expect("section");
    doc.add_text(section, "no text allowed here");
    doc
}

fn wrong_top_level_order() -> Document {
    // invalid everywhere: userstyles before template
    xmltree::parse_document(
        "<document><userstyles/><template><section/></template><content/></document>",
    )
    .expect("parses")
}

#[test]
fn figure1_is_valid_under_all_four_schemas() {
    let doc = figure1();
    assert!(
        dtd::is_valid(&figure2_dtd(), &doc),
        "{:?}",
        dtd::validate(&figure2_dtd(), &doc)
    );
    let f4 = figure4();
    let r = f4.validate(&doc);
    assert!(r.is_valid(), "{:?}", r.structure.violations);
    let f5 = figure5();
    let r = f5.validate(&doc);
    assert!(r.is_valid(), "{:?}", r.structure.violations);
    let x = figure3_xsd();
    let r = bonxai::xsd::validate(&x, &doc);
    assert!(r.is_valid(), "{:?}", r.violations);
}

#[test]
fn dtd_and_figure4_agree() {
    let dtd = figure2_dtd();
    let f4 = figure4();
    for doc in [
        figure1(),
        title_less_content_section(),
        text_in_template_section(),
        wrong_top_level_order(),
    ] {
        assert_eq!(
            dtd::is_valid(&dtd, &doc),
            f4.is_valid(&doc),
            "disagreement on {}",
            xmltree::to_string(&doc)
                .chars()
                .take(120)
                .collect::<String>()
        );
    }
}

#[test]
fn xsd_and_figure5_agree() {
    let x = figure3_xsd();
    let f5 = figure5();
    for doc in [
        figure1(),
        title_less_content_section(),
        text_in_template_section(),
        wrong_top_level_order(),
    ] {
        assert_eq!(
            bonxai::xsd::is_valid(&x, &doc),
            f5.is_valid(&doc),
            "disagreement on {}",
            xmltree::to_string(&doc)
                .chars()
                .take(120)
                .collect::<String>()
        );
    }
}

#[test]
fn figure5_exceeds_dtd_expressiveness() {
    // The context-sensitive cases: valid for the DTD (and Figure 4),
    // invalid for the XSD (and Figure 5).
    let dtd = figure2_dtd();
    let f5 = figure5();
    for doc in [title_less_content_section(), text_in_template_section()] {
        assert!(dtd::is_valid(&dtd, &doc));
        assert!(!f5.is_valid(&doc));
    }
}

#[test]
fn dtd_conversion_reproduces_figure4_semantics() {
    let dtd = figure2_dtd();
    let converted = dtd_import::dtd_to_bonxai(&dtd, &["document"]).expect("conversion works");
    for doc in [
        figure1(),
        title_less_content_section(),
        text_in_template_section(),
        wrong_top_level_order(),
    ] {
        assert_eq!(dtd::is_valid(&dtd, &doc), converted.is_valid(&doc));
    }
}

#[test]
fn figure5_translates_to_xsd_and_back() {
    let f5 = figure5();
    let opts = TranslateOptions::default();
    let (xsd, _) = pipeline::bonxai_to_xsd(&f5, &opts);
    let (back, _) = pipeline::xsd_to_bonxai(&xsd, &opts);
    for doc in [
        figure1(),
        title_less_content_section(),
        text_in_template_section(),
        wrong_top_level_order(),
    ] {
        let expected = f5.is_valid(&doc);
        assert_eq!(bonxai::xsd::is_valid(&xsd, &doc), expected);
        assert_eq!(back.is_valid(&doc), expected);
    }
}

#[test]
fn figure3_translates_to_bonxai() {
    let x = figure3_xsd();
    let opts = TranslateOptions::default();
    let (bonxai_schema, _path) = pipeline::xsd_to_bonxai(&x, &opts);
    // the produced schema prints and re-parses
    let source = bonxai_schema.to_source();
    let reparsed = BonxaiSchema::parse(&source).expect("lifted schema parses");
    for doc in [
        figure1(),
        title_less_content_section(),
        text_in_template_section(),
        wrong_top_level_order(),
    ] {
        let expected = bonxai::xsd::is_valid(&x, &doc);
        assert_eq!(bonxai_schema.is_valid(&doc), expected);
        assert_eq!(reparsed.is_valid(&doc), expected);
    }
}

#[test]
fn figure3_roundtrips_through_xsd_syntax() {
    let x = figure3_xsd();
    let emitted = bonxai::xsd::emit_xsd(&x, Some("http://mydomain.org/namespace")).unwrap();
    let back = bonxai::xsd::parse_xsd(&emitted).unwrap();
    for doc in [
        figure1(),
        title_less_content_section(),
        wrong_top_level_order(),
    ] {
        assert_eq!(
            bonxai::xsd::is_valid(&x, &doc),
            bonxai::xsd::is_valid(&back, &doc)
        );
    }
}

#[test]
fn figure3_and_figure5_are_formally_equivalent() {
    // The paper presents Figure 5 as "equivalent to the (full version of
    // the) XSD of Figure 3" — decide it, don't just sample it.
    let x = figure3_xsd();
    let f5 = figure5();
    let left = bonxai::core::translate::xsd_to_dfa_xsd(&x);
    let right = bonxai::core::translate::bxsd_to_dfa_xsd(&f5.bxsd);
    assert_eq!(
        bonxai::xsd::check_schemas_equivalent(&left, &right),
        Ok(()),
        "Figure 3 and Figure 5 must accept the same documents"
    );
}

#[test]
fn figure4_and_figure5_are_formally_inequivalent() {
    let f4 = figure4();
    let f5 = figure5();
    let left = bonxai::core::translate::bxsd_to_dfa_xsd(&f4.bxsd);
    let right = bonxai::core::translate::bxsd_to_dfa_xsd(&f5.bxsd);
    let divergence = bonxai::xsd::check_schemas_equivalent(&left, &right)
        .expect_err("the DTD-level and XSD-level schemas differ");
    // The divergence is somewhere below the root — a context-sensitive
    // distinction (e.g. template sections vs content sections).
    assert!(divergence.path.len() >= 2, "{divergence}");
}

#[test]
fn figure2_dtd_conversion_equivalent_to_figure4() {
    // The paper calls Figure 4 "equivalent to the DTD in Figure 2" at the
    // structural level — Figure 4 additionally types @size as xs:integer,
    // which the DTD's CDATA cannot express. So: structurally equivalent
    // (datatypes erased), and any full-comparison divergence must be an
    // attribute-type difference.
    let dtd = figure2_dtd();
    let converted = dtd_import::dtd_to_bonxai(&dtd, &["document"]).expect("converts");
    let f4 = figure4();
    let left = bonxai::core::translate::bxsd_to_dfa_xsd(&converted.bxsd);
    let right = bonxai::core::translate::bxsd_to_dfa_xsd(&f4.bxsd);
    assert_eq!(
        bonxai::xsd::check_schemas_equivalent(
            &bonxai::xsd::erase_datatypes(&left),
            &bonxai::xsd::erase_datatypes(&right)
        ),
        Ok(()),
        "Figure 2's conversion and Figure 4 must be structurally equivalent"
    );
    match bonxai::xsd::check_schemas_equivalent(&left, &right) {
        Ok(()) => {}
        Err(d) => assert_eq!(
            d.reason,
            bonxai::xsd::DivergenceReason::Attributes,
            "only attribute datatypes may differ: {d}"
        ),
    }
}
