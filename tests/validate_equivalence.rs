//! Differential test: the relevance-product validator and the lock-step
//! reference evaluator must produce byte-identical reports — same
//! violations in the same order, same per-node matching sets, same
//! relevant-rule assignments — on random schemas and random (possibly
//! mutated) documents, including schemas compiled with a budget too
//! small for the product (the Theorem 9 fallback path).

use bonxai_core::bxsd::Bxsd;
use bonxai_core::{CompiledBxsd, ValidateOptions};
use bonxai_gen::{
    mutate_document, random_regular_bxsd, random_suffix_bxsd, sample_document, DocConfig,
    SchemaConfig,
};
use proptest::prelude::*;
use rand::prelude::*;
use relang::Sym;
use xmltree::Document;

const RECORD: ValidateOptions = ValidateOptions {
    record_matches: true,
    force_lockstep: false,
};
const LOCKSTEP: ValidateOptions = ValidateOptions {
    record_matches: true,
    force_lockstep: true,
};

/// Compares all three evaluation configurations on one (schema, doc)
/// pair and cross-checks relevance against the derivative-based
/// reference `Bxsd::relevant_rule`.
fn check_equivalence(bxsd: &Bxsd, doc: &Document) -> Result<(), TestCaseError> {
    let compiled = CompiledBxsd::new(bxsd);
    let fast = compiled.validate_with(doc, RECORD);
    let slow = compiled.validate_with(doc, LOCKSTEP);
    prop_assert_eq!(
        &fast.violations,
        &slow.violations,
        "product vs lock-step violations (product states: {:?})",
        compiled.product_states()
    );
    prop_assert_eq!(&fast.matches, &slow.matches, "product vs lock-step matches");

    // A budget of 1 can never hold the product (initial + dead states
    // alone exceed it), so this compiles to the fallback path.
    let tiny = CompiledBxsd::with_budget(bxsd, 1);
    prop_assert!(tiny.product_states().is_none(), "budget 1 must overflow");
    let fallback = tiny.validate_with(doc, RECORD);
    prop_assert_eq!(
        &fallback.violations,
        &slow.violations,
        "fallback violations"
    );
    prop_assert_eq!(&fallback.matches, &slow.matches, "fallback matches");

    // Relevance agrees with the derivative-based reference semantics.
    // (Only meaningful when every name is in the alphabet: an unknown
    // name dead-ends its following siblings by design, which the pure
    // ancestor-string reference cannot see.)
    let all_known = doc
        .elements()
        .into_iter()
        .all(|n| bxsd.ename.lookup(doc.name(n).expect("element")).is_some());
    if all_known && !fast.matches.is_empty() {
        for (&node, m) in &fast.matches {
            let path: Vec<Sym> = doc
                .anc_str(node)
                .iter()
                .map(|n| bxsd.ename.lookup(n).expect("known name"))
                .collect();
            prop_assert_eq!(m.relevant, bxsd.relevant_rule(&path), "node {:?}", node);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn product_and_lockstep_agree_on_random_schemas(
        seed in any::<u64>(),
        n_names in 3usize..10,
        n_rules in 1usize..10,
        k in 1usize..4,
        suffix in any::<bool>(),
        mutations in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SchemaConfig {
            n_names,
            // General (non-suffix) schemas go through Algorithm 3's
            // product in bxsd_to_dfa_xsd below — keep them small.
            n_rules: if suffix { n_rules } else { n_rules.min(4) },
            k,
            ..SchemaConfig::default()
        };
        let bxsd = if suffix {
            random_suffix_bxsd(&cfg, &mut rng)
        } else {
            random_regular_bxsd(&cfg, &mut rng)
        };
        let dfa_xsd = bonxai_core::translate::bxsd_to_dfa_xsd(&bxsd);
        let doc_cfg = DocConfig {
            max_nodes: 60,
            ..DocConfig::default()
        };
        let Some(mut doc) = sample_document(&dfa_xsd, &doc_cfg, &mut rng) else {
            // Schema admits no finite document — nothing to validate.
            return Ok(());
        };
        // Positive case first, then increasingly mutated (negative) ones.
        check_equivalence(&bxsd, &doc)?;
        for _ in 0..mutations {
            doc = mutate_document(&doc, &mut rng);
            check_equivalence(&bxsd, &doc)?;
        }
    }
}
