//! Differential test for the zero-copy XML reader: the borrowed-token
//! lexer (`xmltree::stream::XmlReader`) must produce *exactly* the event
//! stream of the byte-at-a-time reference reader it replaced
//! (`xmltree::reference::XmlReader`) — same events, same decoded text,
//! same positions — over randomly generated documents exercising entity
//! declarations and references, character references, CDATA sections,
//! comments, processing instructions, and both quote styles; and the
//! same *errors* on randomly damaged inputs. Both byte sources are
//! checked: the in-memory slice source and the rolling-buffer I/O source
//! fed through a reader that dribbles 1–7 bytes per `read` call, so
//! every token shape gets split across refill boundaries somewhere in
//! the run.
//!
//! Every case additionally runs under **both lexing engines** — the
//! detected SIMD engine (structural index) and the forced-scalar SWAR
//! fallback — and must produce identical events and identical rendered
//! errors; dedicated cases pin the window-boundary invariants (structural
//! characters straddling compaction shifts, multi-byte UTF-8 split
//! across refills, invalid UTF-8 blamed at the same byte).

use std::fmt::Write as _;
use std::io::Read;

use proptest::prelude::*;

use bonxai::xmltree::reference;
use bonxai::xmltree::stream::{ByteSrc, IoSrc, XmlEvent, XmlReader};
use bonxai::xmltree::Engine;

// ---------------------------------------------------------------- generator

/// A content fragment of the generated source text.
#[derive(Debug, Clone)]
enum Frag {
    Plain(String),
    /// A character reference; the bool selects `&#xH;` vs `&#D;`.
    CharRef(u32, bool),
    /// One of the five predefined entities, by name.
    Predef(&'static str),
    /// `&eN;` — declared iff the document declares more than N entities.
    Entity(usize),
    Cdata(String),
    Comment(String),
    Pi(String),
}

fn plain() -> impl Strategy<Value = String> {
    "[a-z0-9 .,;:()!*+-]{1,12}"
}

/// Fragments legal in attribute values and entity replacement text
/// (no CDATA/comments/PIs). `n_refs` bounds which entities may be
/// referenced, so generated entity declarations never recurse.
fn value_frag(n_refs: usize) -> BoxedStrategy<Frag> {
    let refs = if n_refs == 0 {
        plain().prop_map(Frag::Plain).boxed()
    } else {
        (0..n_refs).prop_map(Frag::Entity).boxed()
    };
    prop_oneof![
        4 => plain().prop_map(Frag::Plain),
        1 => (char_ref_code(), any::<bool>()).prop_map(|(c, hex)| Frag::CharRef(c, hex)),
        1 => prop::sample::select(&["lt", "gt", "amp", "quot", "apos"]).prop_map(Frag::Predef),
        1 => refs,
    ]
    .boxed()
}

fn char_ref_code() -> BoxedStrategy<u32> {
    prop::sample::select(&[0x41u32, 0x7A, 0x3B, 0xE9, 0x20AC, 0x10348, 0x9, 0xA])
}

fn content_frag() -> BoxedStrategy<Frag> {
    prop_oneof![
        5 => value_frag(3),
        1 => "[a-z <>&;!?-]{0,10}".prop_map(Frag::Cdata),
        1 => "[a-z 0-9<>&]{0,8}".prop_map(Frag::Comment),
        1 => "[a-z 0-9]{0,8}".prop_map(Frag::Pi),
    ]
    .boxed()
}

#[derive(Debug, Clone)]
struct Elem {
    name: String,
    /// (name, double-quoted?, value fragments)
    attrs: Vec<(String, bool, Vec<Frag>)>,
    children: Vec<Item>,
    /// Written `<name/>` when childless.
    self_close: bool,
}

#[derive(Debug, Clone)]
enum Item {
    F(Frag),
    E(Elem),
}

fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}"
}

fn attrs() -> BoxedStrategy<Vec<(String, bool, Vec<Frag>)>> {
    prop::collection::vec(
        (
            name(),
            any::<bool>(),
            prop::collection::vec(value_frag(3), 0..3),
        ),
        0..3,
    )
    .prop_map(|mut attrs| {
        attrs.sort_by(|a, b| a.0.cmp(&b.0));
        attrs.dedup_by(|a, b| a.0 == b.0);
        attrs
    })
    .boxed()
}

fn arb_elem() -> BoxedStrategy<Elem> {
    let leaf = (name(), attrs(), any::<bool>()).prop_map(|(name, attrs, self_close)| Elem {
        name,
        attrs,
        children: Vec::new(),
        self_close,
    });
    leaf.prop_recursive(3, 20, 4, |inner| {
        (
            (name(), attrs(), any::<bool>()),
            prop::collection::vec(
                prop_oneof![content_frag().prop_map(Item::F), inner.prop_map(Item::E),],
                0..4,
            ),
        )
            .prop_map(|((name, attrs, self_close), children)| Elem {
                name,
                attrs,
                children,
                self_close,
            })
    })
    .boxed()
}

/// The whole document: misc before/after the root, an optional DOCTYPE
/// declaring the first `n_entities` of three generated entity values,
/// and the root element tree.
#[derive(Debug, Clone)]
struct Doc {
    xml_decl: bool,
    n_entities: usize,
    entity_values: [Vec<Frag>; 3],
    root: Elem,
    trailing_comment: bool,
}

fn arb_doc() -> BoxedStrategy<Doc> {
    (
        (any::<bool>(), 0usize..4, any::<bool>()),
        (
            prop::collection::vec(value_frag(0), 0..3),
            prop::collection::vec(value_frag(1), 0..3),
            prop::collection::vec(value_frag(2), 0..3),
        ),
        arb_elem(),
    )
        .prop_map(
            |((xml_decl, n_entities, trailing_comment), (e0, e1, e2), root)| Doc {
                xml_decl,
                n_entities,
                entity_values: [e0, e1, e2],
                root,
                trailing_comment,
            },
        )
        .boxed()
}

// ------------------------------------------------------------------ render

fn render_frag(f: &Frag, out: &mut String) {
    match f {
        Frag::Plain(s) => out.push_str(s),
        Frag::CharRef(c, true) => write!(out, "&#x{c:X};").expect("write to String"),
        Frag::CharRef(c, false) => write!(out, "&#{c};").expect("write to String"),
        Frag::Predef(n) => write!(out, "&{n};").expect("write to String"),
        Frag::Entity(i) => write!(out, "&e{i};").expect("write to String"),
        Frag::Cdata(s) => write!(out, "<![CDATA[{s}]]>").expect("write to String"),
        Frag::Comment(s) => write!(out, "<!--{s}-->").expect("write to String"),
        Frag::Pi(s) => write!(out, "<?pi {s}?>").expect("write to String"),
    }
}

fn render_elem(e: &Elem, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (n, dq, v) in &e.attrs {
        let q = if *dq { '"' } else { '\'' };
        out.push(' ');
        out.push_str(n);
        out.push('=');
        out.push(q);
        for f in v {
            render_frag(f, out);
        }
        out.push(q);
    }
    if e.children.is_empty() && e.self_close {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            Item::F(f) => render_frag(f, out),
            Item::E(child) => render_elem(child, out),
        }
    }
    write!(out, "</{}>", e.name).expect("write to String");
}

fn render_doc(d: &Doc) -> String {
    let mut out = String::new();
    if d.xml_decl {
        out.push_str("<?xml version=\"1.0\"?>\n");
    }
    if d.n_entities > 0 {
        out.push_str("<!DOCTYPE ");
        out.push_str(&d.root.name);
        out.push_str(" [\n");
        for (i, v) in d.entity_values.iter().take(d.n_entities).enumerate() {
            write!(out, "  <!ENTITY e{i} \"").expect("write to String");
            for f in v {
                render_frag(f, &mut out);
            }
            out.push_str("\">\n");
        }
        out.push_str("]>\n");
    }
    render_elem(&d.root, &mut out);
    if d.trailing_comment {
        out.push_str("<!-- end -->");
    }
    out
}

// ----------------------------------------------------------------- drivers

const EVENT_CAP: usize = 100_000;

fn collect_new<S: ByteSrc>(mut r: XmlReader<S>) -> Result<Vec<XmlEvent>, String> {
    let mut out = Vec::new();
    loop {
        match r.next_event() {
            Ok(tok) => {
                let ev = tok.to_event();
                let end = matches!(ev, XmlEvent::EndDocument);
                out.push(ev);
                if end {
                    return Ok(out);
                }
                assert!(out.len() < EVENT_CAP, "runaway event stream");
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

fn collect_reference(input: &str) -> Result<Vec<XmlEvent>, String> {
    let mut r = reference::XmlReader::from_str(input);
    let mut out = Vec::new();
    loop {
        match r.next_event() {
            Ok(ev) => {
                let end = matches!(ev, XmlEvent::EndDocument);
                out.push(ev);
                if end {
                    return Ok(out);
                }
                assert!(out.len() < EVENT_CAP, "runaway event stream");
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// An `io::Read` that returns 1–7 bytes per call, cycling the chunk
/// size, so the rolling buffer refills mid-token in every shape.
struct Dribble<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.step = self.step % 7 + 1;
        Ok(n)
    }
}

fn dribble(input: &str) -> XmlReader<IoSrc<Dribble<'_>>> {
    XmlReader::from_reader(Dribble {
        data: input.as_bytes(),
        pos: 0,
        step: 1,
    })
}

fn with_engine<S: ByteSrc>(mut r: XmlReader<S>, engine: Engine) -> XmlReader<S> {
    r.set_engine(engine);
    r
}

/// All readers over the same text — slice and dribbled-io sources, under
/// the detected SIMD engine and the forced-scalar fallback, against the
/// byte-at-a-time reference: identical events (positions included) when
/// all succeed, identical rendered errors when all fail, and never one
/// succeeding where another fails.
fn assert_agreement(input: &str) {
    let reference = collect_reference(input);
    for engine in [Engine::detect(), Engine::Scalar] {
        let new_slice = collect_new(with_engine(XmlReader::from_str(input), engine));
        let new_io = collect_new(with_engine(dribble(input), engine));
        assert_eq!(
            new_slice,
            new_io,
            "slice and io sources disagree ({} engine) on {input:?}",
            engine.name()
        );
        assert_eq!(
            new_slice,
            reference,
            "readers disagree ({} engine) on {input:?}",
            engine.name()
        );
    }
}

// ------------------------------------------------------------------- tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_documents_agree(d in arb_doc()) {
        assert_agreement(&render_doc(&d));
    }

    #[test]
    fn truncated_documents_agree(d in arb_doc(), cut in 0usize..400) {
        let mut text = render_doc(&d);
        let pos = cut.min(text.len());
        let pos = (0..=pos).rev().find(|&p| text.is_char_boundary(p)).expect("0 is a boundary");
        text.truncate(pos);
        assert_agreement(&text);
    }

    #[test]
    fn spliced_documents_agree(
        d in arb_doc(),
        at in 0usize..400,
        junk in prop::sample::select(&["<", ">", "&", ";", "]]>", "--", "/", "=", "\"", "x"]),
    ) {
        let mut text = render_doc(&d);
        let pos = at.min(text.len());
        let pos = (0..=pos).rev().find(|&p| text.is_char_boundary(p)).expect("0 is a boundary");
        text.insert_str(pos, junk);
        assert_agreement(&text);
    }

    #[test]
    fn arbitrary_ascii_agrees(input in "[<>a-z&;/\"'= !\\[\\]?#x0-9-]{0,60}") {
        assert_agreement(&input);
    }
}

/// Structural characters straddling [`IoSrc`] compaction shifts: the
/// document spans several 64 KiB refill windows, and the varying text
/// lengths keep tags sliding against the refill grid, so compaction
/// lands mid-tag in many shapes. Index positions are absolute and must
/// survive every shift.
#[test]
fn window_compaction_straddles_structural_chars() {
    let mut input = String::from("<r>");
    for i in 0..4000 {
        write!(input, "<i a=\"v{i}\">{:x>width$}</i>", "", width = i % 37)
            .expect("write to String");
    }
    input.push_str("</r>");
    assert!(input.len() > 100_000, "must span multiple refill windows");
    assert_agreement(&input);
}

/// Multi-byte UTF-8 split across window refills: dribbled 1–7 bytes per
/// `read`, every 2-, 3-, and 4-byte character lands on a refill boundary
/// somewhere in the run, in text, CDATA, and attribute values. The
/// chunked watermark validation must treat a partial character at the
/// index frontier as "not yet validated", never as an error.
#[test]
fn multibyte_utf8_split_across_windows() {
    let run = "aé€𐍈".repeat(800);
    let input = format!("<r t=\"{run}\">{run}<c><![CDATA[{run}]]></c></r>");
    assert_agreement(&input);
}

/// Diagnostics raised long after the rolling window first compacted:
/// the defect sits past 100 KiB of sliding-width elements (and
/// thousands of newlines), so its position is computed from index
/// bookkeeping that survived many compaction shifts — not from any
/// per-event position threading. Every source × engine combination
/// must render the identical line/column.
#[test]
fn diagnostics_after_window_compaction() {
    let mut ok = String::from("<r>\n");
    for i in 0..4000 {
        writeln!(ok, "<i b=\"w{i}\">{:y>width$}</i>", "", width = i % 29).expect("write to String");
    }
    assert!(ok.len() > 100_000, "must span multiple refill windows");
    let cases = [
        format!("{ok}<i>&nope;</i></r>"),    // undeclared entity
        format!("{ok}</x>"),                 // mismatched close tag
        format!("{ok}<i a='v' a='w'/></r>"), // duplicate attribute
        format!("{ok}<i>text"),              // end of input mid-content
    ];
    for input in &cases {
        assert_agreement(input);
    }
}

/// CDATA↔text adjacency in every coalescing shape: runs that join
/// across CDATA open/close boundaries, comments, PIs, and references
/// must come out as the same single text events — including the
/// whitespace-only / non-whitespace distinction — and malformed
/// boundaries must error identically.
#[test]
fn cdata_text_adjacency_coalesces_identically() {
    let shapes: &[&str] = &[
        "<r>ab<![CDATA[cd]]>ef</r>",
        "<r><![CDATA[cd]]>tail</r>",
        "<r>head<![CDATA[cd]]></r>",
        "<r><![CDATA[a]]><![CDATA[b]]></r>",
        "<r>  <![CDATA[  ]]>  </r>",
        "<r> <![CDATA[x]]> </r>",
        "<r>a<!-- c -->b<![CDATA[c]]>d<?p q?>e</r>",
        "<r>&amp;<![CDATA[&amp;]]>&amp;</r>",
        "<r><![CDATA[]]></r>",
        "<r>x<![CDATA[]]y</r>",
        "<r>x<![CDATA[a]b]]c]]>y</r>",
    ];
    for s in shapes {
        assert_agreement(s);
    }
}

/// Entity references sliding against the refill grid: padding of every
/// length 0..64 pushes `&…;` across a dribbled refill boundary at each
/// of its byte positions, in both text content and attribute values.
/// Decoded output and positions must be unaffected by where the split
/// lands.
#[test]
fn entities_straddle_chunk_edges() {
    let mut input = String::from("<!DOCTYPE r [ <!ENTITY w \"wide value\"> ]>\n<r>");
    for pad in 0..64 {
        write!(
            input,
            "<i a=\"{:->pad$}&w;&#x20AC;\">{:->pad$}&amp;&w;tail</i>",
            "", ""
        )
        .expect("write to String");
    }
    input.push_str("</r>");
    assert_agreement(&input);
}

/// Invalid UTF-8 arriving over io (a `&str` can't carry it): both
/// engines must blame the same byte with the same message — in text, in
/// an attribute value, in CDATA, in a tag name, and as a character
/// truncated by end of input.
#[test]
fn invalid_utf8_error_parity_across_engines() {
    let cases: &[&[u8]] = &[
        b"<r>ab\xFFcd</r>",
        b"<r a=\"x\xC3\x28y\">t</r>",
        b"<r><![CDATA[ab\xE2\x82z]]></r>",
        b"<r>caf\xC3",
        b"<r t\xFF=\"v\"/>",
        b"<r>one<!--\xFF-->two</r>",
    ];
    for case in cases {
        let detected = collect_new(with_engine(XmlReader::from_reader(*case), Engine::detect()));
        let scalar = collect_new(with_engine(XmlReader::from_reader(*case), Engine::Scalar));
        assert_eq!(
            detected,
            scalar,
            "engines disagree on {:?}",
            String::from_utf8_lossy(case)
        );
    }
}
