//! Schema evolution with priorities — the use case of Section 3.2.
//!
//! The running example lets sections nest arbitrarily deep. Suppose the
//! schema must change so that the nesting depth below content is at most
//! three. In BonXai this is **one appended rule** (special cases later,
//! general rules first); in XML Schema the same change needs a chain of
//! new complex types, one per allowed depth.
//!
//! Run with: `cargo run --example schema_evolution`

use bonxai::core::pipeline;
use bonxai::core::translate::TranslateOptions;
use bonxai::core::BonxaiSchema;
use bonxai::xmltree::{self, builder::elem};

const BASE: &str = r#"
global { document }
grammar {
  document = { element template, element content }
  template = { (element section)? }
  content  = { (element section)* }
  content//section = mixed { attribute title, (element section)* }
  template//section = { (element section)? }
  @title = { type xs:string }
}
"#;

/// The evolved schema: the paper's extra rule, appended verbatim —
/// subsubsections have a title and text but no section children.
const EVOLVED_EXTRA_RULE: &str = "  content/section/section/section = mixed { attribute title }\n";

fn main() {
    let base = BonxaiSchema::parse(BASE).expect("base schema parses");
    let evolved_src = {
        // append the new rule as the last rule of the grammar block
        let idx = BASE.rfind('}').expect("grammar block");
        let (head, tail) = BASE.split_at(idx);
        format!("{head}{EVOLVED_EXTRA_RULE}{tail}")
    };
    let evolved = BonxaiSchema::parse(&evolved_src).expect("evolved schema parses");

    println!("=== the evolution: one appended BonXai rule ===");
    println!("{}", EVOLVED_EXTRA_RULE.trim());

    // Depth-4 nesting: accepted before, rejected after.
    let deep = elem("document")
        .child(elem("template"))
        .child(
            elem("content").child(
                elem("section").attr("title", "1").child(
                    elem("section").attr("title", "2").child(
                        elem("section")
                            .attr("title", "3")
                            .child(elem("section").attr("title", "4")),
                    ),
                ),
            ),
        )
        .build();
    let depth3 = elem("document")
        .child(elem("template"))
        .child(
            elem("content").child(
                elem("section").attr("title", "1").child(
                    elem("section")
                        .attr("title", "2")
                        .child(elem("section").attr("title", "3").text("leaf text")),
                ),
            ),
        )
        .build();

    println!(
        "\ndepth-3 document: base={} evolved={}",
        base.is_valid(&depth3),
        evolved.is_valid(&depth3)
    );
    println!(
        "depth-4 document: base={} evolved={}",
        base.is_valid(&deep),
        evolved.is_valid(&deep)
    );
    assert!(base.is_valid(&deep) && !evolved.is_valid(&deep));
    assert!(base.is_valid(&depth3) && evolved.is_valid(&depth3));

    // Now compare the cost on the XSD side.
    let opts = TranslateOptions::default();
    let (xsd_base, _) = pipeline::bonxai_to_xsd(&base, &opts);
    let (xsd_evolved, _) = pipeline::bonxai_to_xsd(&evolved, &opts);
    println!("\n=== edit-size comparison ===");
    println!(
        "BonXai: {} rules → {} rules (one rule appended, {} chars)",
        base.bxsd.n_rules(),
        evolved.bxsd.n_rules(),
        EVOLVED_EXTRA_RULE.trim().len()
    );
    println!(
        "XSD:    {} types → {} types (the section chain is unrolled per depth)",
        xsd_base.n_types(),
        xsd_evolved.n_types()
    );
    println!("\nevolved XSD:");
    println!(
        "{}",
        bonxai::xsd::emit_xsd(&xsd_evolved, None).expect("emits")
    );

    // Both sides still agree, of course.
    for doc in [&deep, &depth3] {
        assert_eq!(
            evolved.is_valid(doc),
            bonxai::xsd::is_valid(&xsd_evolved, doc),
            "{}",
            xmltree::to_string(doc)
        );
    }
    println!("translated XSDs agree with the BonXai schemas on both documents ✓");
}
