//! Quickstart: write a BonXai schema, validate a document, inspect the
//! matched rules, and compile the schema to XML Schema.
//!
//! Run with: `cargo run --example quickstart`

use bonxai::core::pipeline;
use bonxai::core::translate::TranslateOptions;
use bonxai::core::BonxaiSchema;
use bonxai::xmltree;

fn main() {
    // A small recipe collection language. Note the priority rule at the
    // end: ingredient lists directly below a summary are plain text.
    let schema = BonxaiSchema::parse(
        r#"
        global { cookbook }
        grammar {
          cookbook = { (element recipe)+ }
          recipe   = { attribute name, element summary?, element ingredients,
                       (element step)+ }
          summary  = mixed { (element ingredients)? }
          ingredients = { (element item)* }
          item     = mixed { attribute amount? }
          step     = mixed { }
          summary/ingredients = mixed { }
          @amount  = { type xs:decimal }
        }
        constraints {
          key recipeName = //recipe { @name }
        }
        "#,
    )
    .expect("schema parses");

    let doc = xmltree::parse_document(
        r#"<cookbook>
             <recipe name="Bread">
               <summary>Classic loaf. <ingredients>flour, water, salt</ingredients></summary>
               <ingredients>
                 <item amount="500">flour</item>
                 <item amount="350">water</item>
                 <item>salt</item>
               </ingredients>
               <step>Mix.</step>
               <step>Bake.</step>
             </recipe>
           </cookbook>"#,
    )
    .expect("document parses");

    let report = schema.validate(&doc);
    println!("document valid: {}", report.is_valid());

    // Matched-rule highlighting: which rule governs each element?
    println!("\nrelevant rule per element:");
    for node in doc.iter_elements() {
        let m = &report.structure.matches[&node];
        let rule = m
            .relevant
            .map(|i| {
                schema.ast.rules[schema.rule_source[i]]
                    .pattern
                    .source
                    .clone()
            })
            .unwrap_or_else(|| "(unconstrained)".to_owned());
        println!(
            "  <{}>{} ← {}",
            doc.name(node).unwrap(),
            " ".repeat(14usize.saturating_sub(doc.name(node).unwrap().len())),
            rule
        );
    }

    // Catching an error: a step outside a recipe.
    let bad = xmltree::parse_document(
        r#"<cookbook><recipe name="X"><ingredients/><step>only</step></recipe>
           <recipe name="X"><ingredients/><step>dup name</step></recipe></cookbook>"#,
    )
    .expect("parses");
    let report = schema.validate(&bad);
    println!("\nsecond document valid: {}", report.is_valid());
    for v in report.violations() {
        println!("  structural: {}", v.kind);
    }
    for v in &report.constraints {
        println!("  constraint: {v}");
    }

    // BonXai is a front-end for XML Schema: compile and print the XSD.
    let opts = TranslateOptions::default();
    let (xsd, path) = pipeline::bonxai_to_xsd(&schema, &opts);
    println!(
        "\ncompiled to an XSD with {} types via the {:?} path:",
        xsd.n_types(),
        path
    );
    println!("{}", bonxai::xsd::emit_xsd(&xsd, None).expect("emits"));
}
