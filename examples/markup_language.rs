//! The paper's running example, end to end: the fictional markup language
//! of Section 2 with its document (Figure 1), DTD (Figure 2), XSD
//! (Figure 3), and the two BonXai schemas (Figures 4 and 5).
//!
//! Run with: `cargo run --example markup_language`

use bonxai::core::pipeline;
use bonxai::core::translate::TranslateOptions;
use bonxai::core::{dtd_import, BonxaiSchema};
use bonxai::xmltree::{self, dtd};

fn data(name: &str) -> String {
    std::fs::read_to_string(format!("{}/data/{name}", env!("CARGO_MANIFEST_DIR")))
        .unwrap_or_else(|e| panic!("missing data file {name}: {e}"))
}

fn main() {
    let doc = xmltree::parse_document(&data("figure1_document.xml")).expect("figure 1");
    let fig2 = dtd::parse_dtd(&data("figure2.dtd")).expect("figure 2");
    let fig3 = bonxai::xsd::parse_xsd(&data("figure3.xsd")).expect("figure 3");
    let fig4 = BonxaiSchema::parse(&data("figure4.bonxai")).expect("figure 4");
    let fig5 = BonxaiSchema::parse(&data("figure5.bonxai")).expect("figure 5");

    println!("=== the example document validates under all four schemas ===");
    println!("  DTD  (Fig. 2): {}", dtd::is_valid(&fig2, &doc));
    println!("  XSD  (Fig. 3): {}", bonxai::xsd::is_valid(&fig3, &doc));
    println!("  BonXai (Fig. 4, DTD-equivalent): {}", fig4.is_valid(&doc));
    println!("  BonXai (Fig. 5, XSD-equivalent): {}", fig5.is_valid(&doc));

    // The expressiveness gap: a title-less section below content.
    let mut bad = doc.clone();
    let content = bad
        .iter_elements()
        .find(|&n| bad.name(n) == Some("content"))
        .expect("content");
    bad.add_element(content, "section");
    println!("\n=== a title-less content section shows the DTD/XSD gap ===");
    println!("  DTD accepts:    {}", dtd::is_valid(&fig2, &bad));
    println!("  XSD accepts:    {}", bonxai::xsd::is_valid(&fig3, &bad));
    println!("  Fig. 4 accepts: {}", fig4.is_valid(&bad));
    println!("  Fig. 5 accepts: {}", fig5.is_valid(&bad));

    // DTD → BonXai: Figure 2 converts into a Figure-4-like schema.
    let converted = dtd_import::dtd_to_bonxai(&fig2, &["document"]).expect("converts");
    println!("\n=== Figure 2's DTD converted to BonXai ===");
    println!("{}", converted.to_source());

    // XSD → BonXai: Figure 3 converts into a Figure-5-like schema.
    let opts = TranslateOptions::default();
    let (lifted, path) = pipeline::xsd_to_bonxai(&fig3, &opts);
    println!("=== Figure 3's XSD translated to BonXai (path: {path:?}) ===");
    println!("{}", lifted.to_source());

    // BonXai → XSD: Figure 5 compiles to an XSD.
    let (xsd, path) = pipeline::bonxai_to_xsd(&fig5, &opts);
    println!(
        "=== Figure 5 compiled to an XSD ({} types, path: {path:?}) ===",
        xsd.n_types()
    );
    println!(
        "{}",
        bonxai::xsd::emit_xsd(&xsd, Some("http://mydomain.org/namespace")).expect("emits")
    );
}
