//! "XML Schema for human beings": use BonXai as a front-end to inspect
//! and refactor an existing XSD.
//!
//! Reads an XSD (Figure 3 by default, or a path given on the command
//! line), translates it to BonXai, reports which fragment it falls into
//! (k-suffix or general), and round-trips it back to XSD.
//!
//! Run with: `cargo run --example xsd_frontend [-- path/to/schema.xsd]`

use bonxai::core::pipeline;
use bonxai::core::translate::{Path, TranslateOptions};
use bonxai::gen::{sample_document, DocConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let arg = std::env::args().nth(1);
    let source = match &arg {
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => std::fs::read_to_string(format!("{}/data/figure3.xsd", env!("CARGO_MANIFEST_DIR")))
            .expect("bundled figure3.xsd"),
    };

    let xsd = bonxai::xsd::parse_xsd(&source).expect("XSD parses");
    println!(
        "loaded XSD: {} types, {} element names, size {}",
        xsd.n_types(),
        xsd.ename.len(),
        xsd.size()
    );

    let opts = TranslateOptions::default();
    let (schema, path) = pipeline::xsd_to_bonxai(&xsd, &opts);
    match path {
        Path::Fast(k) => println!(
            "the schema is {k}-suffix: content models depend on at most the \
             last {k} labels of the ancestor path (Section 4.4 fast path)"
        ),
        Path::General => println!(
            "the schema is not k-suffix for small k: the general Algorithm 2 \
             (DFA → regex) was used"
        ),
    }

    println!("\n=== as BonXai ===");
    println!("{}", schema.to_source());

    // Sample a document from the schema and cross-validate.
    let dfa_schema = bonxai::core::translate::xsd_to_dfa_xsd(&xsd);
    let mut rng = StdRng::seed_from_u64(1);
    if let Some(doc) = sample_document(&dfa_schema, &DocConfig::default(), &mut rng) {
        println!("=== a sampled conforming document ===");
        println!("{}", bonxai::xmltree::to_string_pretty(&doc));
        assert!(bonxai::xsd::is_valid(&xsd, &doc));
        assert!(schema.is_valid(&doc));
        println!("validates under both the XSD and the BonXai schema ✓");
    }

    // And back to XSD.
    let (back, _) = pipeline::bonxai_to_xsd(&schema, &opts);
    println!(
        "\nround-trip XSD: {} types (original had {}; minimization merges \
         duplicates introduced by the translations)",
        back.n_types(),
        xsd.n_types()
    );
}
