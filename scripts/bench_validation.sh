#!/usr/bin/env bash
# Runs the validation scaling table and the product-vs-lock-step
# ablation, writing the ablation numbers to BENCH_validation.json.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p bonxai-bench --bin exp_validation -- --json BENCH_validation.json "$@"
