#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, a warning-free
# clippy pass over every target in the workspace (vendor stand-ins
# included), canonical formatting, the reader differential suite under
# both lexer engines (detected SIMD and forced scalar), a parse-only
# front-end microbench as a smoke check that the zero-copy reader
# still runs under both engines, and the
# lint-corpus and diff-corpus golden checks (every seeded-defect
# fixture and schema pair must produce exactly its checked-in JSON
# report — codes, spans, witnesses, verdicts).
# CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
# Reader differential suite twice: once with the detected SIMD lexer
# engine, once with the structural-index pass disabled, so the scalar
# fallback path stays exercised on hardware where SIMD is available.
cargo test -q -p bonxai --test reader_differential
BONXAI_NO_SIMD=1 cargo test -q -p bonxai --test reader_differential
cargo run --release -p bonxai-bench --bin exp_validation -- --parse-only

# Differential conformance: the checked-in corpus through the oracle
# and all four fast paths under every lexer engine and byte source,
# then a bounded fixed-seed fuzz smoke over the validation stack and
# the DTD parser. Any divergence or panic fails the gate. Run twice:
# once with the detected engine and once with the structural index
# force-disabled, so a fused-path bug cannot hide behind an engine the
# CI host happens to lack (and vice versa).
target/release/bonxai conform data/conformance --fuzz 1000 --seed 0 > /dev/null \
  || { echo "conformance/fuzz divergence — run: bonxai conform data/conformance --fuzz 1000 --seed 0" >&2; exit 1; }
BONXAI_NO_SIMD=1 target/release/bonxai conform data/conformance > /dev/null \
  || { echo "conformance divergence (scalar engine) — run: BONXAI_NO_SIMD=1 bonxai conform data/conformance" >&2; exit 1; }
# Compile-path smoke: 20-schema subset through every stage, cached and
# ablated, so the automata kernels + AutomataCache stay runnable.
cargo run --release -p bonxai-bench --bin exp_compile -- --smoke > /dev/null
cargo run --release -p bonxai-bench --bin exp_compile -- --smoke --no-cache > /dev/null

# Incremental engine: the revalidate-vs-fresh-vs-oracle equivalence
# proptest under both lexer engines (it serializes and reparses each
# edited tree), then the E21 smoke, which asserts the delta-speedup
# and recompile-reuse acceptance gates internally.
cargo test -q -p bonxai --test incremental_equivalence
BONXAI_NO_SIMD=1 cargo test -q -p bonxai --test incremental_equivalence
cargo run --release -p bonxai-bench --bin exp_incremental -- --smoke > /dev/null

# Lint corpus: `bonxai lint --format json` over examples/lint/ diffed
# against the golden reports. Exit 1 from the linter just means the
# fixture has error-level findings (it should); anything worse is a bug.
BONXAI=target/release/bonxai
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
for f in examples/lint/*.bonxai examples/lint/*.xsd; do
  base=$(basename "$f")
  status=0
  "$BONXAI" lint "$f" --format json --notes > "$tmp" || status=$?
  if [ "$status" -gt 1 ]; then
    echo "lint crashed on $f (exit $status)" >&2
    exit 1
  fi
  diff -u "examples/lint/golden/$base.json" "$tmp" \
    || { echo "lint golden mismatch: $f" >&2; exit 1; }
done
echo "lint corpus: $(ls examples/lint/golden | wc -l) golden reports match"

# Diff corpus: `bonxai diff --format json` over the schema pairs in
# examples/diff/ (known-equivalent, known-divergent, and a cross-
# formalism BonXai×XSD pair) diffed against the golden reports. Exit 1
# just means the pair differs (the divergent ones should); anything
# worse is a bug. Then the diff benchmark smoke, cached and ablated,
# which also asserts every identical pair diffs equivalent.
for a in examples/diff/*.a.bonxai; do
  base=$(basename "$a" .a.bonxai)
  b=$(ls "examples/diff/$base".b.* | head -1)
  status=0
  "$BONXAI" diff "$a" "$b" --format json > "$tmp" || status=$?
  if [ "$status" -gt 1 ]; then
    echo "diff crashed on $base (exit $status)" >&2
    exit 1
  fi
  diff -u "examples/diff/golden/$base.json" "$tmp" \
    || { echo "diff golden mismatch: $base" >&2; exit 1; }
done
echo "diff corpus: $(ls examples/diff/golden | wc -l) golden reports match"
cargo run --release -p bonxai-bench --bin exp_diff -- --smoke > /dev/null
cargo run --release -p bonxai-bench --bin exp_diff -- --smoke --no-cache > /dev/null
