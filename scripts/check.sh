#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, a warning-free
# clippy pass over every target in the workspace (vendor stand-ins
# included), canonical formatting, and a parse-only front-end
# microbench as a smoke check that the zero-copy reader still runs.
# CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
cargo run --release -p bonxai-bench --bin exp_validation -- --parse-only
