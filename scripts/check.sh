#!/usr/bin/env bash
# The tier-1 gate: release build, full test suite, and a warning-free
# clippy pass over every target in the workspace (vendor stand-ins
# included). CI and pre-commit both run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
