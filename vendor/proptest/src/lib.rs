//! Offline, generation-only stand-in for the `proptest` crate.
//!
//! Supports the strategy combinators and macros this workspace uses:
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`] /
//! [`Strategy::prop_recursive`], [`collection::vec`], [`sample::select`],
//! [`option::of`], [`string::string_regex`], and `&str` char-class regex
//! strategies.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the `Debug` rendering of its inputs and the deterministic
//! per-test seed, which reproduces the failure exactly.

use std::fmt;
use std::rc::Rc;

use rand::prelude::*;
use rand::SampleRange;

/// Deterministic RNG handed to strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A generator seeded from a test name (FNV-1a), so every test has a
    /// stable, independent stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.rng.next_u64() % n as u64) as usize
    }

    fn in_range(&mut self, lo: usize, hi_incl: usize) -> usize {
        lo + self.below(hi_incl - lo + 1)
    }
}

/// Why a test case failed (carried by `prop_assert!`-style macros).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. `Clone` so strategies can be reused and composed.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value: fmt::Debug + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        U: fmt::Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    /// Regenerates until `pred` holds (at most 1000 attempts).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let s = self;
        let whence = whence.into();
        BoxedStrategy::new(move |rng| {
            for _ in 0..1000 {
                let v = s.generate(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter {whence:?}: predicate rejected 1000 consecutive samples");
        })
    }

    /// Recursive strategies: `recurse` receives the strategy built so far
    /// and wraps it one level deeper; `depth` bounds the nesting. The
    /// `_desired_size`/`_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // Mix in leaves at every level so expected sizes stay finite.
            cur = union_weighted(vec![(2, self.clone().boxed()), (3, deeper)]);
        }
        cur
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug + 'static>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(&mut rng.rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(&mut rng.rng)
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

/// String literals are char-class regex strategies (`"[a-z]{0,8}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pat = string::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"));
        pat.generate(rng)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    /// The canonical strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy::new(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Weighted union of strategies — the engine behind `prop_oneof!`.
pub fn union_weighted<T: fmt::Debug + 'static>(
    arms: Vec<(u32, BoxedStrategy<T>)>,
) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! with all-zero weights");
    BoxedStrategy::new(move |rng| {
        let mut pick = rng.next_u64() % total;
        for (w, s) in &arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked")
    })
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// A `Vec` of values from `element`, with a size drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            let n = rng.in_range(size.lo, size.hi_incl);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Sampling from fixed sets.
pub mod sample {
    use super::*;

    /// A uniformly random element of `items` (cloned).
    pub fn select<T: Clone + fmt::Debug + 'static>(items: &[T]) -> BoxedStrategy<T> {
        assert!(!items.is_empty(), "select from empty slice");
        let items: Vec<T> = items.to_vec();
        BoxedStrategy::new(move |rng| items[rng.below(items.len())].clone())
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// `Some` of a value from `inner` (3/4 of the time) or `None`.
    pub fn of<S: Strategy>(inner: S) -> BoxedStrategy<Option<S::Value>> {
        BoxedStrategy::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Char-class regex string strategies.
pub mod string {
    use super::*;

    /// A regex-strategy parse error.
    #[derive(Clone, Debug)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// One pattern atom: a set of char ranges and a repetition count.
    #[derive(Clone, Debug)]
    struct Atom {
        ranges: Vec<(u32, u32)>,
        lo: u32,
        hi: u32,
    }

    /// A parsed pattern: a sequence of atoms.
    #[derive(Clone, Debug)]
    pub(crate) struct Pattern {
        atoms: Vec<Atom>,
    }

    impl Pattern {
        /// Parses the supported subset: literal chars, `\`-escapes,
        /// `[...]` classes with ranges, and `{n}` / `{lo,hi}` / `?` /
        /// `*` / `+` quantifiers.
        pub(crate) fn parse(pattern: &str) -> Result<Pattern, Error> {
            let mut chars = pattern.chars().peekable();
            let mut atoms = Vec::new();
            while let Some(c) = chars.next() {
                let ranges = match c {
                    '[' => parse_class(&mut chars)?,
                    '\\' => {
                        let e = chars
                            .next()
                            .ok_or_else(|| Error("trailing backslash".into()))?;
                        let e = unescape(e);
                        vec![(e as u32, e as u32)]
                    }
                    '.' => vec![(' ' as u32, '~' as u32)],
                    other => vec![(other as u32, other as u32)],
                };
                let (lo, hi) = parse_quantifier(&mut chars)?;
                atoms.push(Atom { ranges, lo, hi });
            }
            Ok(Pattern { atoms })
        }

        pub(crate) fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.in_range(atom.lo as usize, atom.hi as usize);
                let total: u32 = atom.ranges.iter().map(|&(a, b)| b - a + 1).sum();
                for _ in 0..n {
                    let mut pick = (rng.next_u64() % total as u64) as u32;
                    for &(a, b) in &atom.ranges {
                        let span = b - a + 1;
                        if pick < span {
                            // Skip the surrogate gap, which the patterns
                            // in use never span.
                            out.push(char::from_u32(a + pick).unwrap_or('?'));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
            out
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(
        chars: &mut core::iter::Peekable<core::str::Chars<'_>>,
    ) -> Result<Vec<(u32, u32)>, Error> {
        let mut ranges = Vec::new();
        loop {
            let c = chars
                .next()
                .ok_or_else(|| Error("unterminated char class".into()))?;
            let c = match c {
                ']' => break,
                '\\' => unescape(
                    chars
                        .next()
                        .ok_or_else(|| Error("trailing backslash in class".into()))?,
                ),
                other => other,
            };
            // Range `c-d` unless `-` is the last char before `]`.
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&d| d != ']') {
                    chars.next(); // the '-'
                    let d = match chars.next().expect("peeked") {
                        '\\' => unescape(
                            chars
                                .next()
                                .ok_or_else(|| Error("trailing backslash in class".into()))?,
                        ),
                        other => other,
                    };
                    if (d as u32) < (c as u32) {
                        return Err(Error(format!("inverted range {c}-{d}")));
                    }
                    ranges.push((c as u32, d as u32));
                    continue;
                }
            }
            ranges.push((c as u32, c as u32));
        }
        if ranges.is_empty() {
            return Err(Error("empty char class".into()));
        }
        Ok(ranges)
    }

    fn parse_quantifier(
        chars: &mut core::iter::Peekable<core::str::Chars<'_>>,
    ) -> Result<(u32, u32), Error> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut lo = 0u32;
                let mut hi = None;
                let mut cur = &mut lo;
                let mut saw_digit = false;
                loop {
                    match chars
                        .next()
                        .ok_or_else(|| Error("unterminated quantifier".into()))?
                    {
                        '}' => break,
                        ',' => {
                            hi = Some(0u32);
                            cur = hi.as_mut().expect("just set");
                            saw_digit = false;
                        }
                        d if d.is_ascii_digit() => {
                            *cur = *cur * 10 + d.to_digit(10).expect("digit");
                            saw_digit = true;
                        }
                        other => return Err(Error(format!("bad quantifier char {other:?}"))),
                    }
                }
                let hi = match hi {
                    Some(h) if saw_digit => h,
                    Some(_) => lo + 8, // open-ended {n,}
                    None => lo,        // exact {n}
                };
                if hi < lo {
                    return Err(Error(format!("inverted quantifier {{{lo},{hi}}}")));
                }
                Ok((lo, hi))
            }
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }

    /// A strategy generating strings matching the supported regex subset.
    pub fn string_regex(pattern: &str) -> Result<BoxedStrategy<String>, Error> {
        let pat = Pattern::parse(pattern)?;
        Ok(BoxedStrategy::new(move |rng| pat.generate(rng)))
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Module-style access (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, sample, string};
    }
}

/// Weighted/unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_ne failed: both {:?}",
                l
            )));
        }
    }};
}

/// Defines `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let mut inputs = ::std::string::String::new();
                $(inputs.push_str(&format!(
                    "  {} = {:?}\n", stringify!($arg), &$arg
                ));)+
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {case}: {e}\ninputs:\n{inputs}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_regex_samples_match_class() {
        let s = crate::string::string_regex("[a-c]{2,5}").unwrap();
        let mut rng = crate::TestRng::from_name("string_regex");
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn literal_pattern_strategies() {
        let mut rng = crate::TestRng::from_name("literal");
        for _ in 0..100 {
            let v = Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!v.is_empty() && v.len() <= 7, "{v:?}");
            assert!(v.chars().next().unwrap().is_ascii_lowercase());
        }
        // the workspace's hairiest classes parse
        for p in [
            "[ -~éü€]{0,20}",
            "[<>a-z&;/\"= !\\[\\]?-]{0,80}",
            "[a-z(){}|&*+?,%0-9 ]{0,40}",
            "[<>!A-Za-z%;()|,*+?\"# ]{0,80}",
            "[a-z{}()@/|&*+?,= \\n]{0,80}",
        ] {
            let s = crate::string::string_regex(p).unwrap();
            let _ = Strategy::generate(&s, &mut rng);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![
            3 => Just(0u8),
            1 => Just(1u8),
        ];
        let mut rng = crate::TestRng::from_name("weights");
        let zeros = (0..4000)
            .filter(|_| Strategy::generate(&s, &mut rng) == 0)
            .count();
        assert!((2700..3300).contains(&zeros), "{zeros}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)] // payload exercises prop_map, never read
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(size).sum::<usize>(),
            }
        }
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 24, 4, |inner| {
            crate::collection::vec(inner, 2..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::from_name("recursion");
        for _ in 0..100 {
            let t = Strategy::generate(&tree, &mut rng);
            assert!(size(&t) < 10_000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u32..50, flip in any::<bool>()) {
            prop_assert!(x < 50);
            if flip {
                prop_assert_eq!(x + 1, 1 + x);
            }
        }

        #[test]
        fn tuple_and_filter(pair in (0usize..10, "[ab]{1,3}")) {
            let (n, s) = pair;
            prop_assert!(n < 10 && !s.is_empty());
        }
    }
}
