//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the macro/struct surface the workspace's benches use and a
//! simple fixed-window timer: each benchmark warms up briefly, then runs
//! for a fixed measurement window and prints the mean wall time per
//! iteration (plus derived throughput when one was declared). There is
//! no statistical analysis — this is enough for the coarse comparisons
//! the experiment harnesses make.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1500);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id, None);
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group, e.g. `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()), self.throughput);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.full), self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// How much setup output to batch per timing in `iter_batched`.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs; batches many iterations per setup.
    SmallInput,
    /// Large per-iteration inputs; one setup per iteration.
    LargeInput,
}

/// Times a closure; handed to each benchmark function.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { mean_ns: f64::NAN }
    }

    /// Times `routine`, including nothing but the calls themselves.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate per-iteration cost.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= WARMUP / 10 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        // Measure for a fixed window.
        let total_iters = ((MEASURE.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let t = Instant::now();
        for _ in 0..total_iters {
            black_box(routine());
        }
        self.mean_ns = t.elapsed().as_secs_f64() * 1e9 / total_iters as f64;
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm up and estimate per-iteration cost (setup excluded).
        let mut iters: u64 = 1;
        let per_iter = loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t.elapsed();
            if dt >= WARMUP / 10 {
                break dt.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        let total_iters = ((MEASURE.as_secs_f64() / per_iter).ceil() as u64).max(1);
        // Batch setups so peak memory stays bounded.
        let mut remaining = total_iters;
        let mut spent = Duration::ZERO;
        while remaining > 0 {
            let batch = remaining.min(1024);
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            spent += t.elapsed();
            remaining -= batch;
        }
        self.mean_ns = spent.as_secs_f64() * 1e9 / total_iters as f64;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let mean = self.mean_ns;
        if mean.is_nan() {
            eprintln!("  {id:<48} (no measurement)");
            return;
        }
        let rate = |per_iter: u64| per_iter as f64 / (mean / 1e9);
        match throughput {
            Some(Throughput::Elements(n)) => {
                eprintln!("  {id:<48} {mean:>14.1} ns/iter {:>14.0} elem/s", rate(n));
            }
            Some(Throughput::Bytes(n)) => {
                eprintln!("  {id:<48} {mean:>14.1} ns/iter {:>14.0} B/s", rate(n));
            }
            None => {
                eprintln!("  {id:<48} {mean:>14.1} ns/iter");
            }
        }
    }
}

/// Collects benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<u64>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
