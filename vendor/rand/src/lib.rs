//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the API subset this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++), the [`Rng`]
//! extension methods `gen_range`/`gen_bool`, and the [`SliceRandom`]
//! helpers `choose`/`shuffle`. Streams are deterministic per seed but
//! differ from the real crate's.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-1000..1000i32);
            assert!((-1000..1000).contains(&x));
            let y = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&z));
            let w = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle virtually never fixes");
    }
}
